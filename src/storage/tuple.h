// Typed access to packed fixed-width rows.
//
// TupleRef is a non-owning view (row pointer + schema); RowWriter fills a
// row slot field by field. Both use memcpy-based access so rows can be
// packed without alignment padding.

#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/types.h"
#include "storage/schema.h"

namespace sharing {

class TupleRef {
 public:
  TupleRef(const uint8_t* data, const Schema* schema)
      : data_(data), schema_(schema) {}

  const uint8_t* data() const { return data_; }
  const Schema& schema() const { return *schema_; }

  int64_t GetInt64(std::size_t col) const {
    int64_t v;
    std::memcpy(&v, data_ + schema_->offset(col), sizeof(v));
    return v;
  }

  double GetDouble(std::size_t col) const {
    double v;
    std::memcpy(&v, data_ + schema_->offset(col), sizeof(v));
    return v;
  }

  Date GetDate(std::size_t col) const {
    int32_t v;
    std::memcpy(&v, data_ + schema_->offset(col), sizeof(v));
    return Date{v};
  }

  /// View of the fixed-width string field, trailing spaces trimmed.
  std::string_view GetString(std::size_t col) const {
    const char* p =
        reinterpret_cast<const char*>(data_ + schema_->offset(col));
    std::size_t width = schema_->column(col).width;
    while (width > 0 && p[width - 1] == ' ') --width;
    return std::string_view(p, width);
  }

  /// Generic (boxed) accessor; convenient for tests and result printing.
  Value GetValue(std::size_t col) const {
    switch (schema_->column(col).type) {
      case ValueType::kInt64:
        return GetInt64(col);
      case ValueType::kDouble:
        return GetDouble(col);
      case ValueType::kDate:
        return GetDate(col);
      case ValueType::kString:
        return std::string(GetString(col));
    }
    return int64_t{0};
  }

  /// "(v0, v1, ...)" — for debugging and golden tests.
  std::string ToString() const {
    std::string out = "(";
    for (std::size_t i = 0; i < schema_->num_columns(); ++i) {
      if (i) out += ", ";
      out += ValueToString(GetValue(i));
    }
    out += ")";
    return out;
  }

 private:
  const uint8_t* data_;
  const Schema* schema_;
};

class RowWriter {
 public:
  RowWriter(uint8_t* data, const Schema* schema)
      : data_(data), schema_(schema) {}

  uint8_t* data() { return data_; }

  RowWriter& SetInt64(std::size_t col, int64_t v) {
    SHARING_DCHECK(schema_->column(col).type == ValueType::kInt64);
    std::memcpy(data_ + schema_->offset(col), &v, sizeof(v));
    return *this;
  }

  RowWriter& SetDouble(std::size_t col, double v) {
    SHARING_DCHECK(schema_->column(col).type == ValueType::kDouble);
    std::memcpy(data_ + schema_->offset(col), &v, sizeof(v));
    return *this;
  }

  RowWriter& SetDate(std::size_t col, Date v) {
    SHARING_DCHECK(schema_->column(col).type == ValueType::kDate);
    std::memcpy(data_ + schema_->offset(col), &v.days_since_epoch,
                sizeof(int32_t));
    return *this;
  }

  /// Writes `v` space-padded/truncated to the column width.
  RowWriter& SetString(std::size_t col, std::string_view v) {
    SHARING_DCHECK(schema_->column(col).type == ValueType::kString);
    std::size_t width = schema_->column(col).width;
    char* dst = reinterpret_cast<char*>(data_ + schema_->offset(col));
    std::size_t n = v.size() < width ? v.size() : width;
    std::memcpy(dst, v.data(), n);
    std::memset(dst + n, ' ', width - n);
    return *this;
  }

  RowWriter& SetValue(std::size_t col, const Value& v) {
    switch (schema_->column(col).type) {
      case ValueType::kInt64:
        return SetInt64(col, std::get<int64_t>(v));
      case ValueType::kDouble:
        return SetDouble(col, std::get<double>(v));
      case ValueType::kDate:
        return SetDate(col, std::get<Date>(v));
      case ValueType::kString:
        return SetString(col, std::get<std::string>(v));
    }
    return *this;
  }

 private:
  uint8_t* data_;
  const Schema* schema_;
};

}  // namespace sharing
