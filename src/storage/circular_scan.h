// Circular shared scans (paper §2 "Sharing in the I/O layer").
//
// Both QPipe and CJOIN coordinate concurrent scans of the same relation
// with circular scans: one producer reads pages round-robin and every
// attached scanner consumes the stream from its attach position until it
// has seen the whole table (one full cycle). k concurrent scans of a table
// then cost ~1x the disk reads instead of kx.
//
// A CircularScanGroup owns one lazily started producer thread per table.
// Consumers attach and receive pinned page handles through small bounded
// queues (the producer paces to the slowest consumer, as QPipe throttles
// its shared scans). A consumer may cancel early (query abort), which
// simply detaches it.
//
// With an IoScheduler configured, the producer issues readahead for the
// next `prefetch_depth` positions through the scheduler's kScanPrefetch
// class (the highest priority: the circular stream paces *every*
// attached consumer) instead of paying each miss inline, so under a
// disk-latency model the page it needs next is usually already resident
// when it gets there. Prefetch is best-effort: a failed or cancelled
// readahead is just a future buffer-pool miss.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/status.h"
#include "io/io_scheduler.h"
#include "storage/buffer_pool.h"
#include "storage/table.h"

namespace sharing {

/// A pinned table page as delivered to scan consumers. `position` is the
/// logical page index within the table (used by tests; consumers normally
/// don't care about order).
struct ScanPage {
  PageGuard guard;
  uint64_t position = 0;

  const uint8_t* data() const { return guard.data(); }
};

using ScanPageRef = std::shared_ptr<ScanPage>;

class CircularScanGroup {
 public:
  /// `queue_depth`: per-consumer buffered pages (backpressure window).
  /// `scheduler` (optional): async readahead of the next `prefetch_depth`
  /// positions at kScanPrefetch priority; null = no prefetch.
  explicit CircularScanGroup(
      const Table* table, std::size_t queue_depth = 4,
      MetricsRegistry* metrics = &MetricsRegistry::Global(),
      std::shared_ptr<IoScheduler> scheduler = nullptr,
      std::size_t prefetch_depth = 4);
  ~CircularScanGroup();

  SHARING_DISALLOW_COPY_AND_MOVE(CircularScanGroup);

  class Ticket;

  /// Attaches a scanner at the current cursor position; it will observe
  /// exactly one full cycle of the table.
  std::unique_ptr<Ticket> Attach();

  const Table* table() const { return table_; }

  /// Scanners currently attached (for tests/monitoring).
  std::size_t ActiveConsumers() const;

  class Ticket {
   public:
    ~Ticket();
    SHARING_DISALLOW_COPY_AND_MOVE(Ticket);

    /// Blocks until the next page is available. Returns nullptr when this
    /// scanner has seen the full table (or was cancelled / hit an error —
    /// check FinalStatus() to tell the difference).
    ScanPageRef Next();

    /// OK after a complete cycle; the I/O error if the scan was cut short
    /// by one. Meaningful once Next() has returned nullptr.
    Status FinalStatus() const;

    /// Detaches early; outstanding queued pages are released.
    void Cancel();

   private:
    friend class CircularScanGroup;
    struct Consumer;
    Ticket(CircularScanGroup* group, std::shared_ptr<Consumer> consumer)
        : group_(group), consumer_(std::move(consumer)) {}

    CircularScanGroup* group_;
    std::shared_ptr<Consumer> consumer_;
  };

 private:
  struct Ticket::Consumer {
    explicit Consumer(std::size_t depth, uint64_t remaining)
        : depth(depth), remaining(remaining) {}

    std::mutex mutex;
    std::condition_variable cv;
    std::deque<ScanPageRef> queue;
    std::size_t depth;
    uint64_t remaining;  // pages left to deliver
    bool closed = false;
    Status error;  // non-OK when the producer hit an I/O failure

    /// Producer side: blocks until there is room or the consumer closed.
    /// Returns false if the consumer is done/closed.
    bool Deliver(ScanPageRef page);
  };

  void ProducerLoop();

  /// Issues scheduler readahead for the positions following absolute
  /// sequence number `seq` (producer thread only).
  void PrefetchAhead(uint64_t seq, uint64_t n_pages);

  const Table* table_;
  std::size_t queue_depth_;
  MetricsRegistry* metrics_;
  Counter* pages_read_;
  Counter* shared_attach_;
  std::shared_ptr<IoScheduler> scheduler_;
  std::size_t prefetch_depth_;

  mutable std::mutex mutex_;
  std::condition_variable wake_producer_;
  std::vector<std::shared_ptr<Ticket::Consumer>> consumers_;
  uint64_t cursor_ = 0;  // next logical page index to read
  bool shutdown_ = false;
  bool producer_started_ = false;
  std::thread producer_;

  // Prefetch state (producer thread only, no lock needed): absolute
  // read sequence, the highest sequence already prefetched, and the
  // outstanding tickets (bounded by prefetch_depth_; cancelled at
  // destruction so no readahead outlives the group).
  uint64_t read_seq_ = 0;
  uint64_t prefetched_until_ = 0;
  std::deque<IoTicketRef> prefetch_tickets_;
};

}  // namespace sharing
