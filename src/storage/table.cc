#include "storage/table.h"

#include "common/logging.h"

namespace sharing {

Table::Table(std::string name, Schema schema, BufferPool* pool)
    : name_(std::move(name)), schema_(std::move(schema)), pool_(pool) {
  SHARING_CHECK(schema_.row_width() > 0) << "empty schema for " << name_;
  SHARING_CHECK(schema_.row_width() <= kPageBytes - page_layout::kHeaderBytes)
      << "row too wide for a page in " << name_;
}

TableAppender::TableAppender(Table* table) : table_(table) {}

TableAppender::~TableAppender() {
  Status st = Finish();
  if (!st.ok()) {
    SHARING_LOG(Warning) << "TableAppender::Finish: " << st.ToString();
  }
}

StatusOr<RowWriter> TableAppender::AppendRow() {
  SHARING_DCHECK(!finished_);
  uint32_t width = static_cast<uint32_t>(table_->schema_.row_width());
  if (current_.valid()) {
    uint8_t* slot = page_layout::AppendRow(current_.mutable_data(), kPageBytes);
    if (slot != nullptr) {
      ++table_->num_rows_;
      return RowWriter(slot, &table_->schema_);
    }
    current_.Release();
  }
  PageId new_id;
  auto guard_or = table_->pool_->NewPage(width, &new_id);
  SHARING_RETURN_NOT_OK(guard_or.status());
  current_ = std::move(guard_or).value();
  table_->pages_.push_back(new_id);
  uint8_t* slot = page_layout::AppendRow(current_.mutable_data(), kPageBytes);
  SHARING_CHECK(slot != nullptr);
  ++table_->num_rows_;
  return RowWriter(slot, &table_->schema_);
}

Status TableAppender::Finish() {
  if (finished_) return Status::OK();
  finished_ = true;
  current_.Release();
  return table_->pool_->FlushAll();
}

StatusOr<Table*> Catalog::CreateTable(const std::string& name, Schema schema,
                                      BufferPool* pool) {
  for (const auto& t : tables_) {
    if (t->name() == name) {
      return Status::AlreadyExists("table '" + name + "' exists");
    }
  }
  tables_.push_back(std::make_unique<Table>(name, std::move(schema), pool));
  return tables_.back().get();
}

StatusOr<Table*> Catalog::GetTable(const std::string& name) const {
  for (const auto& t : tables_) {
    if (t->name() == name) return t.get();
  }
  return Status::NotFound("no table named '" + name + "'");
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& t : tables_) names.push_back(t->name());
  return names;
}

}  // namespace sharing
