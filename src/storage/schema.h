// Column schemas and fixed-width row layout.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "common/types.h"

namespace sharing {

/// A column: name, type, and (for strings) fixed byte width.
struct Column {
  std::string name;
  ValueType type = ValueType::kInt64;
  std::size_t width = 0;  // bytes; derived from type except for strings

  static Column Int64(std::string name) {
    return {std::move(name), ValueType::kInt64, 8};
  }
  static Column Double(std::string name) {
    return {std::move(name), ValueType::kDouble, 8};
  }
  static Column DateCol(std::string name) {
    return {std::move(name), ValueType::kDate, 4};
  }
  static Column String(std::string name, std::size_t width) {
    return {std::move(name), ValueType::kString, width};
  }
};

/// Immutable description of a row layout. Field offsets are precomputed;
/// rows are packed with no alignment padding (fields are accessed via
/// memcpy, which is both portable and fast on x86/ARM).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  std::size_t num_columns() const { return columns_.size(); }
  std::size_t row_width() const { return row_width_; }
  const Column& column(std::size_t i) const { return columns_[i]; }
  std::size_t offset(std::size_t i) const { return offsets_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name`, or error.
  StatusOr<std::size_t> ColumnIndex(const std::string& name) const;

  /// Schema of a projection: columns at `indices`, in order.
  Schema Project(const std::vector<std::size_t>& indices) const;

  /// Concatenation (join output): this schema's columns then `right`'s,
  /// with right-side names prefixed on collision.
  Schema Concat(const Schema& right) const;

  /// "name:type(width)" list — used in plan signatures and debug output.
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Column> columns_;
  std::vector<std::size_t> offsets_;
  std::size_t row_width_ = 0;
};

}  // namespace sharing
