#include "storage/csv.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>

#include "storage/page.h"

namespace sharing {

namespace {

bool NeedsQuoting(std::string_view field, char delimiter) {
  for (char c : field) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void WriteField(std::ostream& out, std::string_view field, char delimiter) {
  if (!NeedsQuoting(field, delimiter)) {
    out << field;
    return;
  }
  out << '"';
  for (char c : field) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

std::string_view TrimPadding(std::string_view s) {
  std::size_t end = s.size();
  while (end > 0 && (s[end - 1] == ' ' || s[end - 1] == '\0')) --end;
  return s.substr(0, end);
}

/// Splits one CSV record (RFC 4180). Returns false on malformed quoting.
bool SplitRecord(const std::string& line, char delimiter,
                 std::vector<std::string>* fields) {
  fields->clear();
  std::string current;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"' && current.empty()) {
      quoted = true;
    } else if (c == delimiter) {
      fields->push_back(std::move(current));
      current.clear();
    } else if (c == '\r' && i + 1 == line.size()) {
      // tolerate CRLF input
    } else {
      current.push_back(c);
    }
  }
  if (quoted) return false;
  fields->push_back(std::move(current));
  return true;
}

Status ParseInto(const std::string& field, const Column& column,
                 std::size_t col, int64_t row, RowWriter* writer) {
  auto err = [&](const std::string& what) {
    return Status::InvalidArgument("row " + std::to_string(row) +
                                   ", column '" + column.name +
                                   "': " + what + ": '" + field + "'");
  };
  switch (column.type) {
    case ValueType::kInt64: {
      int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(field.data(), field.data() + field.size(), v);
      if (ec != std::errc() || ptr != field.data() + field.size()) {
        return err("malformed int64");
      }
      writer->SetInt64(col, v);
      return Status::OK();
    }
    case ValueType::kDouble: {
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (end != field.c_str() + field.size() || field.empty()) {
        return err("malformed double");
      }
      writer->SetDouble(col, v);
      return Status::OK();
    }
    case ValueType::kDate: {
      int year = 0;
      int month = 0;
      int day = 0;
      if (std::sscanf(field.c_str(), "%d-%d-%d", &year, &month, &day) != 3 ||
          month < 1 || month > 12 || day < 1 || day > 31 ||
          year < kDateEpochYear) {
        return err("malformed date (want YYYY-MM-DD)");
      }
      writer->SetDate(col, MakeDate(year, month, day));
      return Status::OK();
    }
    case ValueType::kString: {
      if (field.size() > column.width) {
        return err("string exceeds column width " +
                   std::to_string(column.width));
      }
      writer->SetString(col, field);
      return Status::OK();
    }
  }
  return Status::Internal("unknown column type");
}

}  // namespace

Status ExportCsv(const Table& table, std::ostream& out,
                 const CsvOptions& options) {
  const Schema& schema = table.schema();
  if (options.header) {
    for (std::size_t c = 0; c < schema.num_columns(); ++c) {
      if (c) out << options.delimiter;
      WriteField(out, schema.column(c).name, options.delimiter);
    }
    out << '\n';
  }

  BufferPool* pool = table.buffer_pool();
  char buffer[64];
  for (std::size_t p = 0; p < table.num_pages(); ++p) {
    PageGuard guard;
    SHARING_ASSIGN_OR_RETURN(guard, pool->FetchPage(table.page_id(p)));
    const uint8_t* frame = guard.data();
    const uint32_t n = page_layout::RowCount(frame);
    for (uint32_t i = 0; i < n; ++i) {
      TupleRef row(page_layout::RowAt(frame, i), &schema);
      for (std::size_t c = 0; c < schema.num_columns(); ++c) {
        if (c) out << options.delimiter;
        switch (schema.column(c).type) {
          case ValueType::kInt64:
            out << row.GetInt64(c);
            break;
          case ValueType::kDouble:
            std::snprintf(buffer, sizeof buffer, "%.17g", row.GetDouble(c));
            out << buffer;
            break;
          case ValueType::kDate:
            out << DateToString(row.GetDate(c));
            break;
          case ValueType::kString:
            WriteField(out, TrimPadding(row.GetString(c)),
                       options.delimiter);
            break;
        }
      }
      out << '\n';
    }
  }
  if (!out) return Status::IoError("CSV write failed");
  return Status::OK();
}

StatusOr<int64_t> ImportCsv(Catalog* catalog, BufferPool* pool,
                            const std::string& name, const Schema& schema,
                            std::istream& in, const CsvOptions& options) {
  Table* table;
  SHARING_ASSIGN_OR_RETURN(table, catalog->CreateTable(name, schema, pool));

  std::string line;
  std::vector<std::string> fields;
  int64_t rows = 0;

  if (options.header) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("missing CSV header row");
    }
    if (!SplitRecord(line, options.delimiter, &fields)) {
      return Status::InvalidArgument("malformed CSV header");
    }
    if (fields.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          "header has " + std::to_string(fields.size()) + " fields, schema " +
          std::to_string(schema.num_columns()) + " columns");
    }
    for (std::size_t c = 0; c < fields.size(); ++c) {
      if (fields[c] != schema.column(c).name) {
        return Status::InvalidArgument("header field '" + fields[c] +
                                       "' does not match column '" +
                                       schema.column(c).name + "'");
      }
    }
  }

  TableAppender appender(table);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!SplitRecord(line, options.delimiter, &fields)) {
      return Status::InvalidArgument("row " + std::to_string(rows) +
                                     ": malformed quoting");
    }
    if (fields.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          "row " + std::to_string(rows) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(schema.num_columns()));
    }
    auto writer_or = appender.AppendRow();
    SHARING_RETURN_NOT_OK(writer_or.status());
    RowWriter writer = std::move(writer_or).value();
    for (std::size_t c = 0; c < schema.num_columns(); ++c) {
      SHARING_RETURN_NOT_OK(
          ParseInto(fields[c], schema.column(c), c, rows, &writer));
    }
    ++rows;
  }
  SHARING_RETURN_NOT_OK(appender.Finish());
  return rows;
}

}  // namespace sharing
