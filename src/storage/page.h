// Page layout and in-memory row pages.
//
// Storage pages are fixed-size (kPageBytes) frames holding packed
// fixed-width rows behind a small header; `page_layout` gives typed access
// to a raw frame (the buffer pool hands out frames, not objects).
//
// RowPage is the owning, variable-capacity page used for intermediate
// results flowing between operators/stages (through FIFO buffers and
// Shared Pages Lists). Intermediate pages are self-contained so a page
// produced once can be consumed by many queries (the essence of SP).

#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/macros.h"

namespace sharing {

/// Size of a storage page (Shore-MT used 8 KiB pages; we keep that).
inline constexpr std::size_t kPageBytes = 8192;

namespace page_layout {

inline constexpr uint32_t kMagic = 0x53504147;  // "SPAG"
inline constexpr std::size_t kHeaderBytes = 16;

struct Header {
  uint32_t magic;
  uint32_t row_width;
  uint32_t row_count;
  uint32_t reserved;
};
static_assert(sizeof(Header) == kHeaderBytes);

/// Formats an empty page for rows of `row_width` bytes into `frame`.
inline void Init(uint8_t* frame, uint32_t row_width) {
  auto* h = reinterpret_cast<Header*>(frame);
  h->magic = kMagic;
  h->row_width = row_width;
  h->row_count = 0;
  h->reserved = 0;
}

inline const Header* GetHeader(const uint8_t* frame) {
  return reinterpret_cast<const Header*>(frame);
}

inline uint32_t RowCount(const uint8_t* frame) {
  return GetHeader(frame)->row_count;
}

inline uint32_t RowWidth(const uint8_t* frame) {
  return GetHeader(frame)->row_width;
}

/// Max rows a frame of `frame_bytes` can hold.
inline uint32_t Capacity(std::size_t frame_bytes, uint32_t row_width) {
  return static_cast<uint32_t>((frame_bytes - kHeaderBytes) / row_width);
}

inline const uint8_t* RowAt(const uint8_t* frame, uint32_t i) {
  const Header* h = GetHeader(frame);
  SHARING_DCHECK(i < h->row_count);
  return frame + kHeaderBytes + std::size_t(i) * h->row_width;
}

/// Appends a row slot; returns nullptr when full.
inline uint8_t* AppendRow(uint8_t* frame, std::size_t frame_bytes) {
  auto* h = reinterpret_cast<Header*>(frame);
  if (h->row_count >= Capacity(frame_bytes, h->row_width)) return nullptr;
  uint8_t* slot =
      frame + kHeaderBytes + std::size_t(h->row_count) * h->row_width;
  ++h->row_count;
  return slot;
}

/// Sanity check for frames read back from disk.
inline bool Valid(const uint8_t* frame) {
  return GetHeader(frame)->magic == kMagic;
}

}  // namespace page_layout

/// Owning page of fixed-width rows; the unit of data flow between operators
/// and the unit of sharing in SP.
class RowPage {
 public:
  static constexpr std::size_t kDefaultDataBytes = 32 * 1024;

  /// Creates an empty page for rows of `row_width` bytes.
  explicit RowPage(std::size_t row_width,
                   std::size_t data_bytes = kDefaultDataBytes)
      : row_width_(row_width),
        capacity_(row_width == 0 ? 0 : data_bytes / row_width),
        data_(capacity_ * row_width) {
    SHARING_DCHECK(row_width > 0);
    SHARING_DCHECK(capacity_ > 0);
  }

  std::size_t row_width() const { return row_width_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t row_count() const { return count_; }
  bool empty() const { return count_ == 0; }
  bool full() const { return count_ == capacity_; }
  std::size_t data_bytes() const { return count_ * row_width_; }

  const uint8_t* RowAt(std::size_t i) const {
    SHARING_DCHECK(i < count_);
    return data_.data() + i * row_width_;
  }

  uint8_t* MutableRowAt(std::size_t i) {
    SHARING_DCHECK(i < count_);
    return data_.data() + i * row_width_;
  }

  /// Reserves the next row slot; caller fills it. Returns nullptr when full.
  uint8_t* AppendSlot() {
    if (count_ == capacity_) return nullptr;
    return data_.data() + (count_++) * row_width_;
  }

  /// Copies `src` (row_width bytes) in; returns false when full.
  bool AppendRow(const uint8_t* src) {
    uint8_t* slot = AppendSlot();
    if (slot == nullptr) return false;
    std::memcpy(slot, src, row_width_);
    return true;
  }

  void Clear() { count_ = 0; }

 private:
  std::size_t row_width_;
  std::size_t capacity_;
  std::size_t count_ = 0;
  std::vector<uint8_t> data_;
};

/// Shared immutable handle to a produced page. Push-based SP copies page
/// *contents* per consumer; pull-based SP shares these handles.
using PageRef = std::shared_ptr<const RowPage>;

}  // namespace sharing
