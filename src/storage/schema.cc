#include "storage/schema.h"

#include <algorithm>

#include "common/logging.h"

namespace sharing {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  offsets_.reserve(columns_.size());
  std::size_t offset = 0;
  for (auto& col : columns_) {
    if (col.width == 0) col.width = FixedWidthOf(col.type);
    SHARING_CHECK(col.width > 0) << "column " << col.name << " has zero width";
    offsets_.push_back(offset);
    offset += col.width;
  }
  row_width_ = offset;
}

StatusOr<std::size_t> Schema::ColumnIndex(const std::string& name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + name + "'");
}

Schema Schema::Project(const std::vector<std::size_t>& indices) const {
  std::vector<Column> cols;
  cols.reserve(indices.size());
  for (auto i : indices) {
    SHARING_CHECK(i < columns_.size());
    cols.push_back(columns_[i]);
  }
  return Schema(std::move(cols));
}

Schema Schema::Concat(const Schema& right) const {
  std::vector<Column> cols = columns_;
  for (const auto& rc : right.columns_) {
    Column c = rc;
    bool collides = std::any_of(cols.begin(), cols.end(), [&](const Column& l) {
      return l.name == c.name;
    });
    if (collides) c.name = "r_" + c.name;
    cols.push_back(std::move(c));
  }
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out = "[";
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += ValueTypeToString(columns_[i].type);
    if (columns_[i].type == ValueType::kString) {
      out += "(" + std::to_string(columns_[i].width) + ")";
    }
  }
  out += "]";
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type ||
        columns_[i].width != other.columns_[i].width) {
      return false;
    }
  }
  return true;
}

}  // namespace sharing
