#include "storage/disk_manager.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "common/fault.h"
#include "common/logging.h"

namespace sharing {

DiskManager::DiskManager(DiskOptions options, MetricsRegistry* metrics)
    : options_(std::move(options)),
      metrics_(metrics),
      reads_counter_(metrics_->GetCounter(metrics::kDiskPageReads)),
      writes_counter_(metrics_->GetCounter(metrics::kDiskPageWrites)),
      read_latency_micros_(options_.read_latency_micros),
      read_bandwidth_mib_(options_.read_bandwidth_mib) {
  if (!options_.path.empty()) {
    file_ = std::fopen(options_.path.c_str(), "wb+");
    SHARING_CHECK(file_ != nullptr)
        << "cannot open backing file " << options_.path;
  }
}

DiskManager::~DiskManager() {
  if (file_ != nullptr) {
    std::fclose(file_);
    std::remove(options_.path.c_str());
  }
}

PageId DiskManager::AllocatePage() {
  if (SHARING_FAULT_POINT(fault_points::kDiskEnospc)) {
    return kInvalidPageId;  // emulated out-of-space: no page to hand out
  }
  {
    std::lock_guard<std::mutex> lock(free_mutex_);
    if (!free_list_.empty()) {
      PageId id = free_list_.back();
      free_list_.pop_back();
      // Recycled pages honor the zeroed-page contract: the previous
      // tenant's bytes must never be readable through a fresh id. The
      // file store defers the zeroing to read time so the spill hot path
      // (which always writes before reading) never pays an extra write.
      if (file_ == nullptr) {
        std::lock_guard<std::mutex> mem_lock(mem_mutex_);
        std::memset(mem_pages_[id].get(), 0, kPageBytes);
      } else {
        zero_on_read_.insert(id);
        zero_on_read_nonempty_.store(true, std::memory_order_release);
      }
      return id;
    }
  }
  PageId id = next_page_.fetch_add(1, std::memory_order_relaxed);
  if (file_ == nullptr) {
    std::lock_guard<std::mutex> lock(mem_mutex_);
    if (mem_pages_.size() <= id) mem_pages_.resize(id + 1);
    mem_pages_[id] = std::make_unique<uint8_t[]>(kPageBytes);
    std::memset(mem_pages_[id].get(), 0, kPageBytes);
  }
  return id;
}

void DiskManager::FreePage(PageId id) {
  SHARING_CHECK(id < next_page_.load(std::memory_order_acquire))
      << "free of unallocated page " << id;
  std::lock_guard<std::mutex> lock(free_mutex_);
  free_list_.push_back(id);
}

void DiskManager::ChargeReadLatency(std::size_t bytes) {
  uint32_t seek = read_latency_micros_.load(std::memory_order_relaxed);
  uint32_t bw = read_bandwidth_mib_.load(std::memory_order_relaxed);
  uint64_t micros = seek;
  if (bw > 0) {
    micros += (static_cast<uint64_t>(bytes) * 1000000ull) /
              (static_cast<uint64_t>(bw) * 1024ull * 1024ull);
  }
  if (micros == 0) return;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(micros);
  if (micros >= 100) {
    std::this_thread::sleep_until(deadline);
  } else {
    while (std::chrono::steady_clock::now() < deadline) {
      // Spin: sleep granularity would overshoot sub-100us latencies.
    }
  }
}

Status DiskManager::ReadPage(PageId id, uint8_t* out) {
  if (id >= next_page_.load(std::memory_order_acquire)) {
    return Status::OutOfRange("read of unallocated page " +
                              std::to_string(id));
  }
  if (SHARING_FAULT_POINT(fault_points::kDiskRead)) {
    return Status::IoError("injected read fault for page " +
                           std::to_string(id));
  }
  if (file_ != nullptr &&
      zero_on_read_nonempty_.load(std::memory_order_acquire)) {
    // A recycled page that was never rewritten is all zeros by contract;
    // serve it without disk I/O (and without the latency model — there
    // is nothing to transfer). Stores that never recycle skip this on
    // the emptiness hint alone.
    std::lock_guard<std::mutex> lock(free_mutex_);
    if (zero_on_read_.contains(id)) {
      std::memset(out, 0, kPageBytes);
      return Status::OK();
    }
  }
  ChargeReadLatency(kPageBytes);
  if (file_ == nullptr) {
    const uint8_t* src;
    {
      std::lock_guard<std::mutex> lock(mem_mutex_);
      src = mem_pages_[id].get();
    }
    std::memcpy(out, src, kPageBytes);
  } else {
    std::lock_guard<std::mutex> lock(file_mutex_);
    if (std::fseek(file_, static_cast<long>(id * kPageBytes), SEEK_SET) != 0) {
      return Status::IoError("fseek failed for page " + std::to_string(id));
    }
    if (std::fread(out, 1, kPageBytes, file_) != kPageBytes) {
      return Status::IoError("short read for page " + std::to_string(id));
    }
  }
  reads_counter_->Increment();
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const uint8_t* data) {
  if (id >= next_page_.load(std::memory_order_acquire)) {
    return Status::OutOfRange("write of unallocated page " +
                              std::to_string(id));
  }
  if (SHARING_FAULT_POINT(fault_points::kDiskWrite)) {
    return Status::IoError("injected write fault for page " +
                           std::to_string(id));
  }
  if (SHARING_FAULT_POINT(fault_points::kDiskWriteShort)) {
    // A partial write that reached the device but not in full — callers
    // must treat it exactly like the real short-fwrite path below.
    return Status::IoError("injected short write for page " +
                           std::to_string(id) + " (wrote " +
                           std::to_string(kPageBytes / 2) + "/" +
                           std::to_string(kPageBytes) + " bytes)");
  }
  if (SHARING_FAULT_POINT(fault_points::kDiskEnospc)) {
    return Status::ResourceExhausted("injected ENOSPC writing page " +
                                     std::to_string(id));
  }
  if (options_.write_latency_micros > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.write_latency_micros));
  }
  if (file_ == nullptr) {
    uint8_t* dst;
    {
      std::lock_guard<std::mutex> lock(mem_mutex_);
      dst = mem_pages_[id].get();
    }
    std::memcpy(dst, data, kPageBytes);
  } else {
    if (zero_on_read_nonempty_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(free_mutex_);
      zero_on_read_.erase(id);  // real bytes supersede the deferred zero
      if (zero_on_read_.empty()) {
        zero_on_read_nonempty_.store(false, std::memory_order_release);
      }
    }
    std::lock_guard<std::mutex> lock(file_mutex_);
    if (std::fseek(file_, static_cast<long>(id * kPageBytes), SEEK_SET) != 0) {
      return Status::IoError("fseek failed for page " + std::to_string(id));
    }
    if (std::fwrite(data, 1, kPageBytes, file_) != kPageBytes) {
      return Status::IoError("short write for page " + std::to_string(id));
    }
  }
  writes_counter_->Increment();
  return Status::OK();
}

IoTicketRef DiskManager::ReadPageAsync(IoScheduler* scheduler,
                                       IoPriority priority, PageId id,
                                       uint8_t* out) {
  SHARING_CHECK(scheduler != nullptr);
  return scheduler->Submit(priority, kPageBytes,
                           [this, id, out] { return ReadPage(id, out); });
}

IoTicketRef DiskManager::WritePageAsync(IoScheduler* scheduler,
                                        IoPriority priority, PageId id,
                                        std::vector<uint8_t> data) {
  SHARING_CHECK(scheduler != nullptr);
  SHARING_CHECK(data.size() == kPageBytes);
  return scheduler->Submit(
      priority, kPageBytes,
      [this, id, data = std::move(data)] { return WritePage(id, data.data()); });
}

void DiskManager::SetLatencyModel(uint32_t read_latency_micros,
                                  uint32_t read_bandwidth_mib) {
  read_latency_micros_.store(read_latency_micros, std::memory_order_relaxed);
  read_bandwidth_mib_.store(read_bandwidth_mib, std::memory_order_relaxed);
}

}  // namespace sharing
