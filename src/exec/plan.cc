#include "exec/plan.h"

#include "common/logging.h"

namespace sharing {

std::string_view PlanKindToString(PlanKind kind) {
  switch (kind) {
    case PlanKind::kScan:
      return "scan";
    case PlanKind::kJoin:
      return "join";
    case PlanKind::kAggregate:
      return "agg";
    case PlanKind::kSort:
      return "sort";
  }
  return "?";
}

std::string AggSpec::Canonical() const {
  std::string out;
  switch (func) {
    case Func::kSum:
      out = "sum";
      break;
    case Func::kCount:
      out = "count";
      break;
    case Func::kAvg:
      out = "avg";
      break;
    case Func::kMin:
      out = "min";
      break;
    case Func::kMax:
      out = "max";
      break;
  }
  out += "(";
  out += input ? input->Canonical() : "*";
  out += ")";
  return out;
}

uint64_t HashCanonical(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

uint64_t PlanNode::Signature() const {
  if (cached_signature_ == 0) {
    cached_signature_ = HashCanonical(Canonical());
    if (cached_signature_ == 0) cached_signature_ = 1;
  }
  return cached_signature_;
}

// ---------------------------------------------------------------------------
// ScanNode
// ---------------------------------------------------------------------------

namespace {
Schema ProjectSchema(const Schema& schema,
                     const std::vector<std::size_t>& projection) {
  return schema.Project(projection);
}
}  // namespace

ScanNode::ScanNode(std::string table_name, const Schema& table_schema,
                   ExprRef predicate, std::vector<std::size_t> projection)
    : PlanNode(PlanKind::kScan, ProjectSchema(table_schema, projection), {}),
      table_name_(std::move(table_name)),
      table_schema_(table_schema),
      predicate_(std::move(predicate)),
      projection_(std::move(projection)) {
  SHARING_CHECK(predicate_ != nullptr);
  SHARING_CHECK(!projection_.empty());
}

std::string ScanNode::Canonical() const {
  std::string out = "scan(" + table_name_ + ",";
  out += predicate_->Canonical();
  out += ",proj[";
  for (std::size_t i = 0; i < projection_.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(projection_[i]);
  }
  out += "])";
  return out;
}

// ---------------------------------------------------------------------------
// JoinNode
// ---------------------------------------------------------------------------

JoinNode::JoinNode(PlanNodeRef build, PlanNodeRef probe, std::size_t build_key,
                   std::size_t probe_key)
    : PlanNode(PlanKind::kJoin,
               build->output_schema().Concat(probe->output_schema()),
               {build, probe}),
      build_key_(build_key),
      probe_key_(probe_key) {
  SHARING_CHECK(build_key_ < build->output_schema().num_columns());
  SHARING_CHECK(probe_key_ < probe->output_schema().num_columns());
  SHARING_CHECK(build->output_schema().column(build_key_).type ==
                ValueType::kInt64)
      << "join keys must be int64";
  SHARING_CHECK(probe->output_schema().column(probe_key_).type ==
                ValueType::kInt64)
      << "join keys must be int64";
}

std::string JoinNode::Canonical() const {
  return "join(" + build()->Canonical() + "," + probe()->Canonical() +
         ",bk=" + std::to_string(build_key_) +
         ",pk=" + std::to_string(probe_key_) + ")";
}

// ---------------------------------------------------------------------------
// AggregateNode
// ---------------------------------------------------------------------------

namespace {
Schema AggOutputSchema(const Schema& input,
                       const std::vector<std::size_t>& group_by,
                       const std::vector<AggSpec>& aggs) {
  std::vector<Column> cols;
  cols.reserve(group_by.size() + aggs.size());
  for (auto g : group_by) {
    SHARING_CHECK(g < input.num_columns());
    cols.push_back(input.column(g));
  }
  for (const auto& a : aggs) {
    if (a.func == AggSpec::Func::kCount) {
      cols.push_back(Column::Int64(a.name));
    } else {
      cols.push_back(Column::Double(a.name));
    }
  }
  return Schema(std::move(cols));
}
}  // namespace

AggregateNode::AggregateNode(PlanNodeRef child,
                             std::vector<std::size_t> group_by,
                             std::vector<AggSpec> aggs)
    : PlanNode(PlanKind::kAggregate,
               AggOutputSchema(child->output_schema(), group_by, aggs),
               {child}),
      group_by_(std::move(group_by)),
      aggs_(std::move(aggs)) {
  SHARING_CHECK(!aggs_.empty());
  for (const auto& a : aggs_) {
    if (a.func != AggSpec::Func::kCount) {
      SHARING_CHECK(a.input != nullptr)
          << "aggregate " << a.name << " needs an input expression";
    }
  }
}

std::string AggregateNode::Canonical() const {
  std::string out = "agg(" + child()->Canonical() + ",gb[";
  for (std::size_t i = 0; i < group_by_.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(group_by_[i]);
  }
  out += "],[";
  for (std::size_t i = 0; i < aggs_.size(); ++i) {
    if (i) out += ",";
    out += aggs_[i].Canonical();
  }
  out += "])";
  return out;
}

// ---------------------------------------------------------------------------
// SortNode
// ---------------------------------------------------------------------------

SortNode::SortNode(PlanNodeRef child, std::vector<SortKey> keys,
                   std::size_t limit)
    : PlanNode(PlanKind::kSort, child->output_schema(), {child}),
      keys_(std::move(keys)),
      limit_(limit) {
  SHARING_CHECK(!keys_.empty());
  for (const auto& k : keys_) {
    SHARING_CHECK(k.column < output_schema().num_columns());
  }
}

std::string SortNode::Canonical() const {
  std::string out = "sort(" + child()->Canonical() + ",[";
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(keys_[i].column);
    out += keys_[i].ascending ? "a" : "d";
  }
  out += "]";
  if (limit_ > 0) {
    out += ",limit=";
    out += std::to_string(limit_);
  }
  out += ")";
  return out;
}

}  // namespace sharing
