// ReferenceExecutor: a deliberately naive, single-threaded plan evaluator.
//
// It shares no code with the pipelined operators and is used as the
// correctness oracle: every engine mode (query-centric, SP-push, SP-pull,
// GQP, GQP+SP) must produce result sets equivalent to this executor's
// output for the same plan.

#pragma once

#include "common/status_or.h"
#include "exec/plan.h"
#include "exec/result.h"
#include "storage/table.h"

namespace sharing {

class ReferenceExecutor {
 public:
  explicit ReferenceExecutor(const Catalog* catalog) : catalog_(catalog) {}

  /// Evaluates `plan` and materializes its full output.
  StatusOr<ResultSet> Execute(const PlanNode& plan);

 private:
  StatusOr<ResultSet> ExecuteScan(const ScanNode& node);
  StatusOr<ResultSet> ExecuteJoin(const JoinNode& node);
  StatusOr<ResultSet> ExecuteAggregate(const AggregateNode& node);
  StatusOr<ResultSet> ExecuteSort(const SortNode& node);

  const Catalog* catalog_;
};

}  // namespace sharing
