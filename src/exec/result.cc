#include "exec/result.h"

#include <algorithm>

namespace sharing {

std::string ResultSet::ToString(std::size_t max_rows) const {
  std::string out = schema_.ToString();
  out += "\n";
  std::size_t n = std::min(max_rows, num_rows());
  for (std::size_t i = 0; i < n; ++i) {
    out += Row(i).ToString();
    out += "\n";
  }
  if (n < num_rows()) {
    out += "... (" + std::to_string(num_rows() - n) + " more)\n";
  }
  return out;
}

}  // namespace sharing
