// Sharing explain: the per-query record of *why* the engine did what it
// did — the admission verdict each stage took for the query's packets,
// whether the query hosted a sharing session or rode one as a
// satellite, which transport moved its pages, how many of those pages
// were served from a host (SPL references or push copies) instead of
// executed for, and where the wall-clock went.
//
// The paper's demo GUI answers these questions live (SP opportunities
// exploited, pages copied vs shared, per-stage CPU time); this module
// answers them per finished query: ExplainState accumulates facts while
// the query runs (stages append an admission record per packet, workers
// add RunPacket wall time), and Build() resolves it into an immutable
// QueryExplain that QueryHandle::Collect attaches to the ResultSet.
// Page counts are read lazily at Build time through weak_ptrs to the
// query's readers — explain must never extend a reader's lifetime (a
// pinned SplReader would block the host's page reclamation).

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/page_stream.h"

namespace sharing {

/// The immutable per-query report. All times in microseconds.
struct QueryExplain {
  /// One packet submission's admission outcome at one stage.
  struct StageRecord {
    /// What the packet became at admission.
    enum class Role {
      kUnshared,   // executed alone (no sharing channel)
      kHost,       // executed and hosted a sharing channel
      kSatellite,  // attached to an in-flight host; executed nothing
    };

    std::string stage;       // "tscan", "join", ...
    uint64_t signature = 0;  // plan-subtree signature (correlation id)
    Role role = Role::kUnshared;
    const char* transport = "none";    // "none" | "push" | "pull"
    /// Who made the call: "static" (configured mode), "cold" (popularity
    /// gate), "model" (per-signature cost model), "fallback" (stage-wide
    /// thresholds), "attach" (an in-flight host existed — free win).
    const char* decided_by = "static";
    bool spill_preferred = false;  // model chose pull for the spill tier
    double confidence = 0;         // model decisions only

    /// RunPacket wall time (0 for satellites — that is the work SP
    /// saved this query).
    int64_t run_micros = 0;

    /// Pages this query's reader consumed from the packet's output.
    int64_t pages_delivered = 0;
    /// Of those, pages served from a host's SPL (pull satellites).
    int64_t pages_shared = 0;
    /// Of those, pages deep-copied into this query's FIFO by a push
    /// host (push satellites).
    int64_t pages_copied = 0;
  };

  uint64_t query_id = 0;
  /// Submit -> Collect-finished wall time (0 if never collected).
  int64_t total_micros = 0;
  std::vector<StageRecord> stages;

  /// One JSON object (single line, no trailing newline).
  std::string ToJson() const;

  /// Compact human-readable dump, one line per stage record.
  std::string ToString() const;
};

const char* ExplainRoleToString(QueryExplain::StageRecord::Role role);

/// The mutable accumulator carried by ExecContext while the query runs.
/// Thread-safe: stages and pool workers append concurrently.
class ExplainState {
 public:
  /// A StageRecord in the making; `source` is the reader whose
  /// PagesDelivered() becomes the record's page counts at Build time
  /// (weak: explain must not pin SPL readers).
  struct PendingStage {
    std::string stage;
    uint64_t signature = 0;
    QueryExplain::StageRecord::Role role =
        QueryExplain::StageRecord::Role::kUnshared;
    const char* transport = "none";
    const char* decided_by = "static";
    bool spill_preferred = false;
    double confidence = 0;
    std::weak_ptr<PageSource> source;
  };

  ExplainState();

  /// Appends an admission record; returns its index for AddRunMicros.
  std::size_t AddStage(PendingStage record);

  /// Charges RunPacket wall time to the record at `index`.
  void AddRunMicros(std::size_t index, int64_t micros);

  /// Stamps the query's total wall time (first call wins).
  void MarkFinished();

  /// Monotonic micros when the query was submitted.
  int64_t start_micros() const { return start_micros_; }

  /// Submit -> MarkFinished (0 until finished).
  int64_t total_micros() const;

  /// Resolves the accumulated state (and the weak readers' page counts)
  /// into an immutable report.
  QueryExplain Build(uint64_t query_id) const;

 private:
  const int64_t start_micros_;
  mutable std::mutex mutex_;
  std::vector<PendingStage> pending_;
  std::vector<int64_t> run_micros_;
  int64_t total_micros_ = 0;
};

using ExplainStateRef = std::shared_ptr<ExplainState>;

}  // namespace sharing
