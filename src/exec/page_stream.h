// Page-granular data flow interfaces.
//
// Operators read pages from PageSources and emit pages into PageSinks.
// QPipe's FIFO buffers (push model) and the Shared Pages List (pull model)
// both implement these interfaces, so operator code is agnostic to the
// sharing mechanism wired around it.

#pragma once

#include <memory>

#include "common/status.h"
#include "storage/page.h"

namespace sharing {

class PageSource {
 public:
  virtual ~PageSource() = default;

  /// Blocks for the next page. Returns nullptr at end-of-stream.
  virtual PageRef Next() = 0;

  /// Terminal status of the stream; meaningful after Next() returned
  /// nullptr (an aborted producer surfaces kAborted here).
  virtual Status FinalStatus() const = 0;

  /// Consumer-side abandonment: tells the producer this consumer will
  /// never read again, so it may stop early. Default: no-op.
  virtual void CancelConsumer() {}

  /// Reader-position contract: the number of pages this source has handed
  /// out via Next() so far. Sharing channels compare reader positions
  /// against pages produced to compute consumer lag (adaptive SP
  /// admission) and to reclaim pages every reader has passed (bounded
  /// pull-SP memory). Sources that cannot track a position return 0.
  virtual std::size_t PagesDelivered() const { return 0; }
};

class PageSink {
 public:
  virtual ~PageSink() = default;

  /// Emits a page. Returns false when no consumer can ever read it again
  /// (all consumers cancelled) — the producer should stop early.
  virtual bool Put(PageRef page) = 0;

  /// Ends the stream. `final` is OK for normal completion or the error
  /// the consumer should observe.
  virtual void Close(Status final) = 0;
};

using PageSourceRef = std::shared_ptr<PageSource>;
using PageSinkRef = std::shared_ptr<PageSink>;

}  // namespace sharing
