// Page-granular data flow interfaces.
//
// Operators read pages from PageSources and emit pages into PageSinks.
// QPipe's FIFO buffers (push model) and the Shared Pages List (pull model)
// both implement these interfaces, so operator code is agnostic to the
// sharing mechanism wired around it.

#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace sharing {

class PageSource {
 public:
  virtual ~PageSource() = default;

  /// Blocks for the next page. Returns nullptr at end-of-stream.
  virtual PageRef Next() = 0;

  /// Batched pull: appends up to `max_pages` pages to `out` and returns
  /// how many were delivered; 0 means end-of-stream. Blocks like Next()
  /// until at least one page is available, but never waits for more than
  /// one — whatever is immediately available rides along. Sources with a
  /// lock on their hot path override this to amortize one acquisition
  /// over the whole run; the default delegates to Next().
  virtual std::size_t NextBatch(std::size_t max_pages,
                                std::vector<PageRef>* out) {
    if (max_pages == 0) return 0;
    PageRef page = Next();
    if (page == nullptr) return 0;
    out->push_back(std::move(page));
    return 1;
  }

  /// Terminal status of the stream; meaningful after Next() returned
  /// nullptr (an aborted producer surfaces kAborted here).
  virtual Status FinalStatus() const = 0;

  /// Consumer-side abandonment: tells the producer this consumer will
  /// never read again, so it may stop early. Default: no-op.
  virtual void CancelConsumer() {}

  /// Reader-position contract: the number of pages this source has handed
  /// out via Next() so far. Sharing channels compare reader positions
  /// against pages produced to compute consumer lag (adaptive SP
  /// admission) and to reclaim pages every reader has passed (bounded
  /// pull-SP memory). Sources that cannot track a position return 0.
  virtual std::size_t PagesDelivered() const { return 0; }

  /// Binds an external stop probe (query deadline / watchdog cancel):
  /// non-OK means the consumer must stop reading. Blocking sources poll
  /// the probe in bounded wait slices instead of parking indefinitely,
  /// and surface the probe's status through FinalStatus — the mechanism
  /// that lets a deadline fire while the reader is parked on an idle
  /// producer. Must be bound before the consumer's first read (the probe
  /// itself must be lock-free/thread-safe). Default: ignored — sources
  /// that never block (or are drained synchronously) need no probe.
  virtual void BindStopCheck(std::function<Status()> stop_check) {
    (void)stop_check;
  }
};

class PageSink {
 public:
  virtual ~PageSink() = default;

  /// Emits a page. Returns false when no consumer can ever read it again
  /// (all consumers cancelled) — the producer should stop early.
  virtual bool Put(PageRef page) = 0;

  /// Batched emit: delivers every page (in order) and returns false when
  /// the consumers are gone — possibly after a prefix was delivered, just
  /// as a sequence of Put calls could. Sinks with a lock or a fan-out
  /// pass on their hot path override this to pay it once per batch; the
  /// default delegates to Put().
  virtual bool PutBatch(std::vector<PageRef> pages) {
    for (PageRef& page : pages) {
      if (!Put(std::move(page))) return false;
    }
    return true;
  }

  /// Ends the stream. `final` is OK for normal completion or the error
  /// the consumer should observe.
  virtual void Close(Status final) = 0;
};

using PageSourceRef = std::shared_ptr<PageSource>;
using PageSinkRef = std::shared_ptr<PageSink>;

}  // namespace sharing
