// Query-centric relational operators (QPipe's per-query stages run these).
//
// Operators are run-to-completion functions: they pull pages from sources,
// push pages into a sink, and Close() the sink with their terminal status.
// Early termination happens when (a) the context is cancelled, or (b) the
// sink reports that no consumer remains.

#pragma once

#include "common/status.h"
#include "exec/exec_context.h"
#include "exec/page_stream.h"
#include "exec/plan.h"
#include "storage/circular_scan.h"
#include "storage/table.h"

namespace sharing {

/// Scans `table`, filters with node.predicate(), projects node.projection()
/// and emits pages of the node's output schema.
///
/// When `scan_group` is non-null the scan attaches to the shared circular
/// scan (pages arrive in wrap-around order; selection semantics are
/// unaffected). Otherwise pages are fetched directly through the buffer
/// pool in table order.
Status RunScan(const ScanNode& node, const Table* table,
               CircularScanGroup* scan_group, ExecContext* ctx,
               PageSink* sink);

/// Hash equi-join; consumes the whole build source first, then streams the
/// probe source. Output rows are build-row bytes followed by probe-row
/// bytes (matching JoinNode's output schema).
Status RunHashJoin(const JoinNode& node, PageSource* build, PageSource* probe,
                   ExecContext* ctx, PageSink* sink);

/// Group-by hash aggregation; consumes the entire input, then emits one row
/// per group.
Status RunHashAggregate(const AggregateNode& node, PageSource* input,
                        ExecContext* ctx, PageSink* sink);

/// Full sort; consumes the entire input, then emits rows in key order.
Status RunSort(const SortNode& node, PageSource* input, ExecContext* ctx,
               PageSink* sink);

}  // namespace sharing
