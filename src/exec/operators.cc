#include "exec/operators.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "storage/tuple.h"

namespace sharing {

namespace {

/// Accumulates output rows into pages and forwards full pages to the sink.
/// Returns false from Append* when the sink has no consumers left.
class PageEmitter {
 public:
  PageEmitter(std::size_t row_width, PageSink* sink)
      : row_width_(row_width), sink_(sink) {
    current_ = std::make_shared<RowPage>(row_width_);
  }

  uint8_t* AppendSlot() {
    uint8_t* slot = current_->AppendSlot();
    if (slot != nullptr) return slot;
    if (!Flush()) return nullptr;
    return current_->AppendSlot();
  }

  bool AppendRow(const uint8_t* row) {
    uint8_t* slot = AppendSlot();
    if (slot == nullptr) return false;
    std::memcpy(slot, row, row_width_);
    return true;
  }

  /// Emits the current partial page. Returns false when consumers are gone.
  bool Flush() {
    if (current_->empty()) return true;
    PageRef out = std::move(current_);
    current_ = std::make_shared<RowPage>(row_width_);
    return sink_->Put(std::move(out));
  }

 private:
  std::size_t row_width_;
  PageSink* sink_;
  std::shared_ptr<RowPage> current_;
};

/// Terminates early: tells upstream producers this consumer is gone, then
/// seals the output with an Aborted status.
Status Abort(const char* why, PageSink* sink,
             std::initializer_list<PageSource*> inputs = {}) {
  for (PageSource* in : inputs) {
    if (in != nullptr) in->CancelConsumer();
  }
  Status st = Status::Aborted(why);
  sink->Close(st);
  return st;
}

/// Terminal close for a stop request (cancellation or deadline expiry):
/// tells upstream producers this consumer is gone, then seals the output
/// with the context's verdict so DeadlineExceeded propagates intact
/// instead of degrading into a generic abort.
Status FinishStopped(ExecContext* ctx, PageSink* sink,
                     std::initializer_list<PageSource*> inputs = {}) {
  for (PageSource* in : inputs) {
    if (in != nullptr) in->CancelConsumer();
  }
  Status st = ctx->TerminalStatus();
  if (st.ok()) st = Status::Aborted("query cancelled");
  sink->Close(st);
  return st;
}

Status FinishNoConsumers(PageSink* sink,
                         std::initializer_list<PageSource*> inputs = {}) {
  return Abort("all consumers detached", sink, inputs);
}

}  // namespace

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

namespace {

/// Filters+projects the rows of one stored page into the emitter.
/// Returns false when the sink lost all consumers.
bool ScanOnePage(const ScanNode& node, const Schema& table_schema,
                 const uint8_t* frame, PageEmitter* emitter) {
  const uint32_t n_rows = page_layout::RowCount(frame);
  const Expr* pred = node.predicate().get();
  const auto& projection = node.projection();
  const Schema& out_schema = node.output_schema();
  for (uint32_t i = 0; i < n_rows; ++i) {
    TupleRef row(page_layout::RowAt(frame, i), &table_schema);
    if (!pred->EvalBool(row)) continue;
    uint8_t* slot = emitter->AppendSlot();
    if (slot == nullptr) return false;
    for (std::size_t c = 0; c < projection.size(); ++c) {
      std::memcpy(slot + out_schema.offset(c),
                  row.data() + table_schema.offset(projection[c]),
                  out_schema.column(c).width);
    }
  }
  return true;
}

}  // namespace

Status RunScan(const ScanNode& node, const Table* table,
               CircularScanGroup* scan_group, ExecContext* ctx,
               PageSink* sink) {
  SHARING_CHECK(table->schema() == node.table_schema())
      << "plan schema does not match table " << table->name();
  PageEmitter emitter(node.output_schema().row_width(), sink);

  if (scan_group != nullptr) {
    auto ticket = scan_group->Attach();
    while (ScanPageRef page = ticket->Next()) {
      if (ctx->StopRequested()) {
        ticket->Cancel();
        return FinishStopped(ctx, sink);
      }
      if (!ScanOnePage(node, table->schema(), page->data(), &emitter)) {
        ticket->Cancel();
        return FinishNoConsumers(sink);
      }
    }
    Status scan_status = ticket->FinalStatus();
    if (!scan_status.ok()) {
      sink->Close(scan_status);
      return scan_status;
    }
  } else {
    BufferPool* pool = table->buffer_pool();
    for (std::size_t p = 0; p < table->num_pages(); ++p) {
      if (ctx->StopRequested()) return FinishStopped(ctx, sink);
      auto guard_or = pool->FetchPage(table->page_id(p));
      if (!guard_or.ok()) {
        sink->Close(guard_or.status());
        return guard_or.status();
      }
      if (!ScanOnePage(node, table->schema(), guard_or.value().data(),
                       &emitter)) {
        return FinishNoConsumers(sink);
      }
    }
  }

  if (!emitter.Flush()) return FinishNoConsumers(sink);
  sink->Close(Status::OK());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Hash join
// ---------------------------------------------------------------------------

Status RunHashJoin(const JoinNode& node, PageSource* build, PageSource* probe,
                   ExecContext* ctx, PageSink* sink) {
  const Schema& build_schema = node.build()->output_schema();
  const Schema& probe_schema = node.probe()->output_schema();
  const std::size_t build_width = build_schema.row_width();
  const std::size_t probe_width = probe_schema.row_width();
  const std::size_t build_key_off = build_schema.offset(node.build_key());
  const std::size_t probe_key_off = probe_schema.offset(node.probe_key());

  // Build phase: copy rows into an arena keyed by the join column.
  std::vector<uint8_t> arena;
  std::unordered_multimap<int64_t, uint32_t> table;
  while (PageRef page = build->Next()) {
    if (ctx->StopRequested()) return FinishStopped(ctx, sink, {build, probe});
    for (std::size_t i = 0; i < page->row_count(); ++i) {
      const uint8_t* row = page->RowAt(i);
      int64_t key;
      std::memcpy(&key, row + build_key_off, sizeof(key));
      table.emplace(key,
                    static_cast<uint32_t>(arena.size() / build_width));
      arena.insert(arena.end(), row, row + build_width);
    }
  }
  if (!build->FinalStatus().ok()) {
    Status st = build->FinalStatus();
    // The probe source was never drained: cancel it, or its producer
    // eventually blocks on a full buffer no one will ever empty (and, in
    // push-SP, starves every other consumer of that sharing session).
    probe->CancelConsumer();
    sink->Close(st);
    return st;
  }

  // Probe phase.
  PageEmitter emitter(node.output_schema().row_width(), sink);
  while (PageRef page = probe->Next()) {
    if (ctx->StopRequested()) return FinishStopped(ctx, sink, {probe});
    for (std::size_t i = 0; i < page->row_count(); ++i) {
      const uint8_t* row = page->RowAt(i);
      int64_t key;
      std::memcpy(&key, row + probe_key_off, sizeof(key));
      auto [lo, hi] = table.equal_range(key);
      for (auto it = lo; it != hi; ++it) {
        uint8_t* slot = emitter.AppendSlot();
        if (slot == nullptr) return FinishNoConsumers(sink, {probe});
        std::memcpy(slot, arena.data() + std::size_t(it->second) * build_width,
                    build_width);
        std::memcpy(slot + build_width, row, probe_width);
      }
    }
  }
  if (!probe->FinalStatus().ok()) {
    Status st = probe->FinalStatus();
    sink->Close(st);
    return st;
  }

  if (!emitter.Flush()) return FinishNoConsumers(sink);
  sink->Close(Status::OK());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Hash aggregate
// ---------------------------------------------------------------------------

namespace {

struct GroupState {
  // One slot per AggSpec: sum/min/max in `acc`, count in `count`
  // (kAvg uses both).
  std::vector<double> acc;
  std::vector<int64_t> count;
  std::vector<bool> seen;  // for min/max initialization
};

}  // namespace

Status RunHashAggregate(const AggregateNode& node, PageSource* input,
                        ExecContext* ctx, PageSink* sink) {
  const Schema& in_schema = node.child()->output_schema();
  const auto& group_by = node.group_by();
  const auto& aggs = node.aggs();

  // Precompute group-key extraction layout: byte ranges of group columns.
  std::vector<std::pair<std::size_t, std::size_t>> key_ranges;  // off, width
  std::size_t key_width = 0;
  for (auto g : group_by) {
    key_ranges.emplace_back(in_schema.offset(g), in_schema.column(g).width);
    key_width += in_schema.column(g).width;
  }

  std::unordered_map<std::string, GroupState> groups;
  std::string key_buf(key_width, '\0');

  while (PageRef page = input->Next()) {
    if (ctx->StopRequested()) return FinishStopped(ctx, sink, {input});
    for (std::size_t i = 0; i < page->row_count(); ++i) {
      const uint8_t* row = page->RowAt(i);
      // Materialize the concatenated group key.
      std::size_t pos = 0;
      for (const auto& [off, width] : key_ranges) {
        std::memcpy(key_buf.data() + pos, row + off, width);
        pos += width;
      }
      auto [it, inserted] = groups.try_emplace(key_buf);
      GroupState& g = it->second;
      if (inserted) {
        g.acc.assign(aggs.size(), 0.0);
        g.count.assign(aggs.size(), 0);
        g.seen.assign(aggs.size(), false);
      }
      TupleRef tuple(row, &in_schema);
      for (std::size_t a = 0; a < aggs.size(); ++a) {
        const AggSpec& spec = aggs[a];
        switch (spec.func) {
          case AggSpec::Func::kCount:
            ++g.count[a];
            break;
          case AggSpec::Func::kSum:
          case AggSpec::Func::kAvg: {
            g.acc[a] += spec.input->EvalDouble(tuple);
            ++g.count[a];
            break;
          }
          case AggSpec::Func::kMin: {
            double v = spec.input->EvalDouble(tuple);
            if (!g.seen[a] || v < g.acc[a]) g.acc[a] = v;
            g.seen[a] = true;
            break;
          }
          case AggSpec::Func::kMax: {
            double v = spec.input->EvalDouble(tuple);
            if (!g.seen[a] || v > g.acc[a]) g.acc[a] = v;
            g.seen[a] = true;
            break;
          }
        }
      }
    }
  }
  if (!input->FinalStatus().ok()) {
    Status st = input->FinalStatus();
    sink->Close(st);
    return st;
  }

  // Emit one row per group: packed group key bytes, then aggregate values.
  const Schema& out_schema = node.output_schema();
  PageEmitter emitter(out_schema.row_width(), sink);
  for (const auto& [key, g] : groups) {
    if (ctx->StopRequested()) return FinishStopped(ctx, sink);
    uint8_t* slot = emitter.AppendSlot();
    if (slot == nullptr) return FinishNoConsumers(sink);
    std::memcpy(slot, key.data(), key.size());
    std::size_t off = key.size();
    for (std::size_t a = 0; a < aggs.size(); ++a) {
      switch (aggs[a].func) {
        case AggSpec::Func::kCount: {
          int64_t c = g.count[a];
          std::memcpy(slot + off, &c, sizeof(c));
          off += sizeof(c);
          break;
        }
        case AggSpec::Func::kAvg: {
          double v = g.count[a] == 0 ? 0.0 : g.acc[a] / double(g.count[a]);
          std::memcpy(slot + off, &v, sizeof(v));
          off += sizeof(v);
          break;
        }
        default: {
          double v = g.acc[a];
          std::memcpy(slot + off, &v, sizeof(v));
          off += sizeof(v);
          break;
        }
      }
    }
  }
  if (!emitter.Flush()) return FinishNoConsumers(sink);
  sink->Close(Status::OK());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Sort
// ---------------------------------------------------------------------------

Status RunSort(const SortNode& node, PageSource* input, ExecContext* ctx,
               PageSink* sink) {
  const Schema& schema = node.output_schema();
  const std::size_t width = schema.row_width();

  std::vector<uint8_t> rows;
  while (PageRef page = input->Next()) {
    if (ctx->StopRequested()) return FinishStopped(ctx, sink, {input});
    if (page->row_count() == 0) continue;
    rows.insert(rows.end(), page->RowAt(0),
                page->RowAt(0) + page->row_count() * width);
  }
  if (!input->FinalStatus().ok()) {
    Status st = input->FinalStatus();
    sink->Close(st);
    return st;
  }

  std::size_t n = width == 0 ? 0 : rows.size() / width;
  std::vector<uint32_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);

  auto compare_rows = [&](uint32_t a, uint32_t b) {
    TupleRef ra(rows.data() + std::size_t(a) * width, &schema);
    TupleRef rb(rows.data() + std::size_t(b) * width, &schema);
    for (const auto& k : node.keys()) {
      int cmp = 0;
      switch (schema.column(k.column).type) {
        case ValueType::kInt64: {
          int64_t va = ra.GetInt64(k.column), vb = rb.GetInt64(k.column);
          cmp = va < vb ? -1 : (va > vb ? 1 : 0);
          break;
        }
        case ValueType::kDouble: {
          double va = ra.GetDouble(k.column), vb = rb.GetDouble(k.column);
          cmp = va < vb ? -1 : (va > vb ? 1 : 0);
          break;
        }
        case ValueType::kDate: {
          auto va = ra.GetDate(k.column), vb = rb.GetDate(k.column);
          cmp = va < vb ? -1 : (va > vb ? 1 : 0);
          break;
        }
        case ValueType::kString: {
          cmp = ra.GetString(k.column).compare(rb.GetString(k.column));
          break;
        }
      }
      if (cmp != 0) return k.ascending ? cmp < 0 : cmp > 0;
    }
    // Total order: break key ties on raw row bytes so top-k (LIMIT)
    // selects a deterministic set, matching the reference executor.
    return std::memcmp(rows.data() + std::size_t(a) * width,
                       rows.data() + std::size_t(b) * width, width) < 0;
  };
  if (node.limit() > 0 && node.limit() < n) {
    // Top-k: only the first `limit` rows in key order are needed.
    std::partial_sort(order.begin(), order.begin() + node.limit(),
                      order.end(), compare_rows);
    order.resize(node.limit());
  } else {
    std::stable_sort(order.begin(), order.end(), compare_rows);
  }

  PageEmitter emitter(width, sink);
  for (uint32_t idx : order) {
    if (ctx->StopRequested()) return FinishStopped(ctx, sink);
    if (!emitter.AppendRow(rows.data() + std::size_t(idx) * width)) {
      return FinishNoConsumers(sink);
    }
  }
  if (!emitter.Flush()) return FinishNoConsumers(sink);
  sink->Close(Status::OK());
  return Status::OK();
}

}  // namespace sharing
