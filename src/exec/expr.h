// Expression trees: predicates and arithmetic over packed rows.
//
// Expressions are immutable, shared, and carry a *canonical form* string.
// Canonical forms are the basis of SP's common-sub-plan detection: two scan
// packets share work iff their plans — including every predicate — render
// to the same canonical string (the paper: SP "is limited to common
// sub-plans with identical predicates").
//
// Evaluation is virtual-dispatch per tuple with unboxed results
// (EvalBool/EvalDouble/EvalInt64); boxing via Value is reserved for plan
// construction and tests.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "storage/tuple.h"

namespace sharing {

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul, kDiv, kMod };

std::string_view CmpOpToString(CmpOp op);
std::string_view ArithOpToString(ArithOp op);

class Expr;
using ExprRef = std::shared_ptr<const Expr>;

class Expr {
 public:
  enum class Kind {
    kColumn,
    kLiteral,
    kCompare,
    kAnd,
    kOr,
    kNot,
    kArith,
  };

  virtual ~Expr() = default;

  Kind kind() const { return kind_; }

  /// Type of the expression's result. Boolean expressions report kInt64
  /// (0/1).
  ValueType output_type() const { return output_type_; }

  /// Numeric evaluation. Valid when output_type is kInt64/kDouble/kDate.
  virtual double EvalDouble(TupleRef row) const = 0;
  virtual int64_t EvalInt64(TupleRef row) const = 0;

  /// Boolean evaluation. Valid for predicates (kCompare/kAnd/kOr/kNot).
  virtual bool EvalBool(TupleRef row) const;

  /// String evaluation. Valid when output_type is kString.
  virtual std::string_view EvalString(TupleRef row) const;

  /// Stable canonical rendering; equal strings <=> identical expressions.
  virtual std::string Canonical() const = 0;

 protected:
  Expr(Kind kind, ValueType output_type)
      : kind_(kind), output_type_(output_type) {}

 private:
  Kind kind_;
  ValueType output_type_;
};

// Factory functions (the public construction API).

/// Reference to input column `index` of type `type`.
ExprRef Col(std::size_t index, ValueType type);

/// Convenience: resolves `name` against `schema`.
ExprRef ColNamed(const Schema& schema, const std::string& name);

/// Literal constant.
ExprRef Lit(Value v);
inline ExprRef Lit(int64_t v) { return Lit(Value(v)); }
inline ExprRef Lit(double v) { return Lit(Value(v)); }
inline ExprRef Lit(Date v) { return Lit(Value(v)); }
inline ExprRef Lit(const char* v) { return Lit(Value(std::string(v))); }

/// Comparison. Operand types must be compatible (numeric with numeric,
/// date with date, string with string).
ExprRef Cmp(CmpOp op, ExprRef lhs, ExprRef rhs);

/// lo <= e AND e <= hi.
ExprRef Between(ExprRef e, Value lo, Value hi);

ExprRef And(std::vector<ExprRef> children);
ExprRef And(ExprRef a, ExprRef b);
ExprRef Or(std::vector<ExprRef> children);
ExprRef Or(ExprRef a, ExprRef b);
ExprRef Not(ExprRef e);

/// Arithmetic; result is kDouble if either side is, else kInt64.
ExprRef Arith(ArithOp op, ExprRef lhs, ExprRef rhs);

/// Always-true predicate (scan without filter).
ExprRef TruePredicate();

}  // namespace sharing
