// Per-query execution context: cancellation and metrics plumbing.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/metrics.h"

namespace sharing {

class ExecContext {
 public:
  explicit ExecContext(uint64_t query_id = 0,
                       MetricsRegistry* metrics = &MetricsRegistry::Global())
      : query_id_(query_id), metrics_(metrics) {}

  uint64_t query_id() const { return query_id_; }
  MetricsRegistry* metrics() const { return metrics_; }

  /// Cooperative cancellation (paper Fig. 1a: a satellite query may cancel
  /// mid-flight). Operators poll this between pages.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  uint64_t query_id_;
  MetricsRegistry* metrics_;
  std::atomic<bool> cancelled_{false};
};

using ExecContextRef = std::shared_ptr<ExecContext>;

}  // namespace sharing
