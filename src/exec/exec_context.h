// Per-query execution context: cancellation, metrics and explain
// plumbing.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/trace.h"
#include "exec/explain.h"

namespace sharing {

class ExecContext {
 public:
  explicit ExecContext(uint64_t query_id = 0,
                       MetricsRegistry* metrics = &MetricsRegistry::Global())
      : query_id_(query_id),
        metrics_(metrics),
        explain_(std::make_shared<ExplainState>()) {}

  uint64_t query_id() const { return query_id_; }
  MetricsRegistry* metrics() const { return metrics_; }

  /// The query's sharing-explain accumulator (always present; stages
  /// append admission records, workers charge RunPacket time).
  const ExplainStateRef& explain() const { return explain_; }

  /// Cooperative cancellation (paper Fig. 1a: a satellite query may cancel
  /// mid-flight). Operators poll this between pages.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Arms the query's wall-clock deadline: `deadline_micros` is absolute
  /// in the Trace::NowMicros timebase, `timeout_ms` the budget it came
  /// from (for the error message). Called once at submission, before any
  /// packet can observe the context; 0 = no deadline.
  void ArmDeadline(int64_t deadline_micros, int64_t timeout_ms) {
    timeout_ms_ = timeout_ms;
    deadline_micros_.store(deadline_micros, std::memory_order_release);
  }

  /// Cancellation OR deadline expiry — the single stop check operators
  /// and park loops poll between pages. Expiry latches, so the verdict
  /// (and TerminalStatus) is stable once taken; the clock is only read
  /// while a deadline is armed and not yet hit.
  bool StopRequested() {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    const int64_t deadline =
        deadline_micros_.load(std::memory_order_acquire);
    if (deadline == 0) return false;
    if (deadline_hit_.load(std::memory_order_acquire)) return true;
    if (Trace::NowMicros() < deadline) return false;
    deadline_hit_.store(true, std::memory_order_release);
    return true;
  }

  bool deadline_exceeded() const {
    return deadline_hit_.load(std::memory_order_acquire);
  }

  /// Why the query stopped: DeadlineExceeded beats Aborted (a watchdog
  /// escalation cancels *because* the deadline passed — the deadline is
  /// the root cause the caller should see), OK when still running.
  Status TerminalStatus() const {
    if (deadline_hit_.load(std::memory_order_acquire)) {
      return Status::DeadlineExceeded(
          "query exceeded its " + std::to_string(timeout_ms_) +
          " ms deadline");
    }
    if (cancelled()) return Status::Aborted("query cancelled");
    return Status::OK();
  }

 private:
  uint64_t query_id_;
  MetricsRegistry* metrics_;
  ExplainStateRef explain_;
  std::atomic<bool> cancelled_{false};
  /// Absolute deadline (trace timebase micros); 0 = none.
  std::atomic<int64_t> deadline_micros_{0};
  /// Latched by the first StopRequested() past the deadline.
  std::atomic<bool> deadline_hit_{false};
  /// The configured budget, for the DeadlineExceeded message only.
  int64_t timeout_ms_ = 0;
};

using ExecContextRef = std::shared_ptr<ExecContext>;

}  // namespace sharing
