// Per-query execution context: cancellation, metrics and explain
// plumbing.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/metrics.h"
#include "exec/explain.h"

namespace sharing {

class ExecContext {
 public:
  explicit ExecContext(uint64_t query_id = 0,
                       MetricsRegistry* metrics = &MetricsRegistry::Global())
      : query_id_(query_id),
        metrics_(metrics),
        explain_(std::make_shared<ExplainState>()) {}

  uint64_t query_id() const { return query_id_; }
  MetricsRegistry* metrics() const { return metrics_; }

  /// The query's sharing-explain accumulator (always present; stages
  /// append admission records, workers charge RunPacket time).
  const ExplainStateRef& explain() const { return explain_; }

  /// Cooperative cancellation (paper Fig. 1a: a satellite query may cancel
  /// mid-flight). Operators poll this between pages.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  uint64_t query_id_;
  MetricsRegistry* metrics_;
  ExplainStateRef explain_;
  std::atomic<bool> cancelled_{false};
};

using ExecContextRef = std::shared_ptr<ExecContext>;

}  // namespace sharing
