#include "exec/explain.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace sharing {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

}  // namespace

const char* ExplainRoleToString(QueryExplain::StageRecord::Role role) {
  switch (role) {
    case QueryExplain::StageRecord::Role::kUnshared:
      return "unshared";
    case QueryExplain::StageRecord::Role::kHost:
      return "host";
    case QueryExplain::StageRecord::Role::kSatellite:
      return "satellite";
  }
  return "?";
}

std::string QueryExplain::ToJson() const {
  std::string out;
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "{\"query_id\":%llu,\"total_micros\":%lld,\"stages\":[",
                static_cast<unsigned long long>(query_id),
                static_cast<long long>(total_micros));
  out += buf;
  bool first = true;
  for (const StageRecord& rec : stages) {
    if (!first) out += ",";
    first = false;
    out += "{\"stage\":\"";
    AppendEscaped(&out, rec.stage);
    std::snprintf(buf, sizeof(buf), "\",\"signature\":\"0x%llx\",\"role\":\"%s\"",
                  static_cast<unsigned long long>(rec.signature),
                  ExplainRoleToString(rec.role));
    out += buf;
    out += ",\"transport\":\"";
    out += rec.transport;
    out += "\",\"decided_by\":\"";
    out += rec.decided_by;
    out += "\"";
    std::snprintf(buf, sizeof(buf),
                  ",\"spill_preferred\":%s,\"confidence\":%.3f",
                  rec.spill_preferred ? "true" : "false", rec.confidence);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  ",\"run_micros\":%lld,\"pages_delivered\":%lld",
                  static_cast<long long>(rec.run_micros),
                  static_cast<long long>(rec.pages_delivered));
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  ",\"pages_shared\":%lld,\"pages_copied\":%lld}",
                  static_cast<long long>(rec.pages_shared),
                  static_cast<long long>(rec.pages_copied));
    out += buf;
  }
  out += "]}";
  return out;
}

std::string QueryExplain::ToString() const {
  std::ostringstream out;
  out << "query " << query_id << " (" << total_micros << "us)";
  for (const StageRecord& rec : stages) {
    out << "\n  " << rec.stage << " sig=0x" << std::hex << rec.signature
        << std::dec << " " << ExplainRoleToString(rec.role) << "/"
        << rec.transport << " by=" << rec.decided_by
        << " run=" << rec.run_micros << "us pages=" << rec.pages_delivered;
    if (rec.pages_shared > 0) out << " shared=" << rec.pages_shared;
    if (rec.pages_copied > 0) out << " copied=" << rec.pages_copied;
    if (rec.spill_preferred) out << " spill";
  }
  return out.str();
}

ExplainState::ExplainState() : start_micros_(NowMicros()) {}

std::size_t ExplainState::AddStage(PendingStage record) {
  std::lock_guard<std::mutex> lock(mutex_);
  pending_.push_back(std::move(record));
  run_micros_.push_back(0);
  return pending_.size() - 1;
}

void ExplainState::AddRunMicros(std::size_t index, int64_t micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index < run_micros_.size()) run_micros_[index] += micros;
}

void ExplainState::MarkFinished() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (total_micros_ == 0) total_micros_ = NowMicros() - start_micros_;
}

int64_t ExplainState::total_micros() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_micros_;
}

QueryExplain ExplainState::Build(uint64_t query_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  QueryExplain explain;
  explain.query_id = query_id;
  explain.total_micros = total_micros_;
  explain.stages.reserve(pending_.size());
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const PendingStage& p = pending_[i];
    QueryExplain::StageRecord rec;
    rec.stage = p.stage;
    rec.signature = p.signature;
    rec.role = p.role;
    rec.transport = p.transport;
    rec.decided_by = p.decided_by;
    rec.spill_preferred = p.spill_preferred;
    rec.confidence = p.confidence;
    rec.run_micros = run_micros_[i];
    if (auto source = p.source.lock()) {
      rec.pages_delivered =
          static_cast<int64_t>(source->PagesDelivered());
      if (rec.role == QueryExplain::StageRecord::Role::kSatellite) {
        // A satellite's pages all came from the host: SPL references
        // under pull, producer-thread deep copies under push.
        if (std::strcmp(p.transport, "pull") == 0) {
          rec.pages_shared = rec.pages_delivered;
        } else if (std::strcmp(p.transport, "push") == 0) {
          rec.pages_copied = rec.pages_delivered;
        }
      }
    }
    explain.stages.push_back(std::move(rec));
  }
  return explain;
}

}  // namespace sharing
