// Materialized query results, used by result collectors and tests.

#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/page.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace sharing {

struct QueryExplain;

/// An owned, materialized result: schema + packed rows.
class ResultSet {
 public:
  ResultSet() = default;
  explicit ResultSet(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  std::size_t num_rows() const {
    return schema_.row_width() == 0 ? 0 : rows_.size() / schema_.row_width();
  }

  TupleRef Row(std::size_t i) const {
    return TupleRef(rows_.data() + i * schema_.row_width(), &schema_);
  }

  /// Appends a packed row (schema().row_width() bytes).
  void AppendRow(const uint8_t* row) {
    rows_.insert(rows_.end(), row, row + schema_.row_width());
  }

  /// Appends every row of `page`.
  void AppendPage(const RowPage& page) {
    for (std::size_t i = 0; i < page.row_count(); ++i) AppendRow(page.RowAt(i));
  }

  /// Reserves a writable row slot.
  RowWriter AppendSlot() {
    std::size_t off = rows_.size();
    rows_.resize(off + schema_.row_width());
    return RowWriter(rows_.data() + off, &schema_);
  }

  /// Canonical row-order-independent form: every row rendered to text,
  /// sorted. Two result sets are equivalent iff these match — the core
  /// invariant checked between engine modes (sharing must not change
  /// results).
  std::vector<std::string> CanonicalRows() const {
    std::vector<std::string> out;
    out.reserve(num_rows());
    for (std::size_t i = 0; i < num_rows(); ++i) {
      out.push_back(Row(i).ToString());
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  std::string ToString(std::size_t max_rows = 20) const;

  /// The sharing-explain report for the query that produced this result
  /// (set by QueryHandle::Collect; null for hand-built result sets). See
  /// exec/explain.h.
  const std::shared_ptr<const QueryExplain>& explain() const {
    return explain_;
  }
  void SetExplain(std::shared_ptr<const QueryExplain> explain) {
    explain_ = std::move(explain);
  }

 private:
  Schema schema_;
  std::vector<uint8_t> rows_;
  std::shared_ptr<const QueryExplain> explain_;
};

}  // namespace sharing
