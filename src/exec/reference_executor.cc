#include "exec/reference_executor.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "storage/tuple.h"

namespace sharing {

StatusOr<ResultSet> ReferenceExecutor::Execute(const PlanNode& plan) {
  switch (plan.kind()) {
    case PlanKind::kScan:
      return ExecuteScan(static_cast<const ScanNode&>(plan));
    case PlanKind::kJoin:
      return ExecuteJoin(static_cast<const JoinNode&>(plan));
    case PlanKind::kAggregate:
      return ExecuteAggregate(static_cast<const AggregateNode&>(plan));
    case PlanKind::kSort:
      return ExecuteSort(static_cast<const SortNode&>(plan));
  }
  return Status::Internal("unknown plan kind");
}

StatusOr<ResultSet> ReferenceExecutor::ExecuteScan(const ScanNode& node) {
  Table* table;
  SHARING_ASSIGN_OR_RETURN(table, catalog_->GetTable(node.table_name()));
  const Schema& in = table->schema();
  ResultSet out(node.output_schema());
  BufferPool* pool = table->buffer_pool();
  for (std::size_t p = 0; p < table->num_pages(); ++p) {
    PageGuard guard;
    SHARING_ASSIGN_OR_RETURN(guard, pool->FetchPage(table->page_id(p)));
    const uint8_t* frame = guard.data();
    const uint32_t n = page_layout::RowCount(frame);
    for (uint32_t i = 0; i < n; ++i) {
      TupleRef row(page_layout::RowAt(frame, i), &in);
      if (!node.predicate()->EvalBool(row)) continue;
      RowWriter w = out.AppendSlot();
      for (std::size_t c = 0; c < node.projection().size(); ++c) {
        std::memcpy(w.data() + node.output_schema().offset(c),
                    row.data() + in.offset(node.projection()[c]),
                    node.output_schema().column(c).width);
      }
    }
  }
  return out;
}

StatusOr<ResultSet> ReferenceExecutor::ExecuteJoin(const JoinNode& node) {
  ResultSet left, right;
  SHARING_ASSIGN_OR_RETURN(left, Execute(*node.build()));
  SHARING_ASSIGN_OR_RETURN(right, Execute(*node.probe()));

  std::unordered_multimap<int64_t, std::size_t> index;
  for (std::size_t i = 0; i < left.num_rows(); ++i) {
    index.emplace(left.Row(i).GetInt64(node.build_key()), i);
  }

  const std::size_t lw = left.schema().row_width();
  const std::size_t rw = right.schema().row_width();
  ResultSet out(node.output_schema());
  for (std::size_t j = 0; j < right.num_rows(); ++j) {
    int64_t key = right.Row(j).GetInt64(node.probe_key());
    auto [lo, hi] = index.equal_range(key);
    for (auto it = lo; it != hi; ++it) {
      RowWriter w = out.AppendSlot();
      std::memcpy(w.data(), left.Row(it->second).data(), lw);
      std::memcpy(w.data() + lw, right.Row(j).data(), rw);
    }
  }
  return out;
}

StatusOr<ResultSet> ReferenceExecutor::ExecuteAggregate(
    const AggregateNode& node) {
  ResultSet input;
  SHARING_ASSIGN_OR_RETURN(input, Execute(*node.child()));
  const Schema& in = input.schema();

  struct Acc {
    std::vector<double> acc;
    std::vector<int64_t> count;
    std::vector<bool> seen;
  };
  // std::map keyed on the packed group bytes: deterministic output order.
  std::map<std::string, Acc> groups;

  for (std::size_t i = 0; i < input.num_rows(); ++i) {
    TupleRef row = input.Row(i);
    std::string key;
    for (auto g : node.group_by()) {
      key.append(reinterpret_cast<const char*>(row.data() + in.offset(g)),
                 in.column(g).width);
    }
    auto [it, inserted] = groups.try_emplace(std::move(key));
    Acc& a = it->second;
    if (inserted) {
      a.acc.assign(node.aggs().size(), 0.0);
      a.count.assign(node.aggs().size(), 0);
      a.seen.assign(node.aggs().size(), false);
    }
    for (std::size_t s = 0; s < node.aggs().size(); ++s) {
      const AggSpec& spec = node.aggs()[s];
      switch (spec.func) {
        case AggSpec::Func::kCount:
          ++a.count[s];
          break;
        case AggSpec::Func::kSum:
        case AggSpec::Func::kAvg:
          a.acc[s] += spec.input->EvalDouble(row);
          ++a.count[s];
          break;
        case AggSpec::Func::kMin: {
          double v = spec.input->EvalDouble(row);
          if (!a.seen[s] || v < a.acc[s]) a.acc[s] = v;
          a.seen[s] = true;
          break;
        }
        case AggSpec::Func::kMax: {
          double v = spec.input->EvalDouble(row);
          if (!a.seen[s] || v > a.acc[s]) a.acc[s] = v;
          a.seen[s] = true;
          break;
        }
      }
    }
  }

  ResultSet out(node.output_schema());
  for (const auto& [key, a] : groups) {
    RowWriter w = out.AppendSlot();
    std::memcpy(w.data(), key.data(), key.size());
    std::size_t off = key.size();
    for (std::size_t s = 0; s < node.aggs().size(); ++s) {
      switch (node.aggs()[s].func) {
        case AggSpec::Func::kCount: {
          int64_t c = a.count[s];
          std::memcpy(w.data() + off, &c, sizeof(c));
          off += sizeof(c);
          break;
        }
        case AggSpec::Func::kAvg: {
          double v = a.count[s] == 0 ? 0.0 : a.acc[s] / double(a.count[s]);
          std::memcpy(w.data() + off, &v, sizeof(v));
          off += sizeof(v);
          break;
        }
        default: {
          double v = a.acc[s];
          std::memcpy(w.data() + off, &v, sizeof(v));
          off += sizeof(v);
          break;
        }
      }
    }
  }
  return out;
}

StatusOr<ResultSet> ReferenceExecutor::ExecuteSort(const SortNode& node) {
  ResultSet input;
  SHARING_ASSIGN_OR_RETURN(input, Execute(*node.child()));
  const Schema& schema = input.schema();

  std::vector<std::size_t> order(input.num_rows());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    TupleRef ra = input.Row(a), rb = input.Row(b);
    for (const auto& k : node.keys()) {
      int cmp = 0;
      switch (schema.column(k.column).type) {
        case ValueType::kInt64: {
          auto va = ra.GetInt64(k.column), vb = rb.GetInt64(k.column);
          cmp = va < vb ? -1 : (va > vb ? 1 : 0);
          break;
        }
        case ValueType::kDouble: {
          auto va = ra.GetDouble(k.column), vb = rb.GetDouble(k.column);
          cmp = va < vb ? -1 : (va > vb ? 1 : 0);
          break;
        }
        case ValueType::kDate: {
          auto va = ra.GetDate(k.column), vb = rb.GetDate(k.column);
          cmp = va < vb ? -1 : (va > vb ? 1 : 0);
          break;
        }
        case ValueType::kString:
          cmp = ra.GetString(k.column).compare(rb.GetString(k.column));
          break;
      }
      if (cmp != 0) return k.ascending ? cmp < 0 : cmp > 0;
    }
    // Same byte-wise tiebreaker as the pipelined sort (deterministic
    // LIMIT semantics).
    return std::memcmp(ra.data(), rb.data(), schema.row_width()) < 0;
  });

  if (node.limit() > 0 && node.limit() < order.size()) {
    order.resize(node.limit());
  }
  ResultSet out(node.output_schema());
  for (std::size_t idx : order) out.AppendRow(input.Row(idx).data());
  return out;
}

}  // namespace sharing
