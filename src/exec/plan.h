// Logical query plans.
//
// Plans are built programmatically by the workload templates (there is no
// SQL front-end; the paper's prototypes also compile templates straight to
// plans). Every node renders a canonical string; its 64-bit hash is the
// plan *signature* used by Simultaneous Pipelining to detect common
// sub-plans among in-flight queries (identical signature == identical
// operator subtree including all predicates).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/expr.h"
#include "storage/schema.h"

namespace sharing {

enum class PlanKind { kScan, kJoin, kAggregate, kSort };

std::string_view PlanKindToString(PlanKind kind);

class PlanNode;
using PlanNodeRef = std::shared_ptr<const PlanNode>;

/// One aggregate in an AggregateNode.
struct AggSpec {
  enum class Func { kSum, kCount, kAvg, kMin, kMax };

  Func func = Func::kCount;
  ExprRef input;  // null for COUNT(*)
  std::string name;

  static AggSpec Sum(ExprRef e, std::string name) {
    return {Func::kSum, std::move(e), std::move(name)};
  }
  static AggSpec Count(std::string name) {
    return {Func::kCount, nullptr, std::move(name)};
  }
  static AggSpec Avg(ExprRef e, std::string name) {
    return {Func::kAvg, std::move(e), std::move(name)};
  }
  static AggSpec Min(ExprRef e, std::string name) {
    return {Func::kMin, std::move(e), std::move(name)};
  }
  static AggSpec Max(ExprRef e, std::string name) {
    return {Func::kMax, std::move(e), std::move(name)};
  }

  std::string Canonical() const;
};

/// One sort key: column index in the input schema + direction.
struct SortKey {
  std::size_t column = 0;
  bool ascending = true;
};

class PlanNode {
 public:
  virtual ~PlanNode() = default;

  PlanKind kind() const { return kind_; }
  const Schema& output_schema() const { return output_schema_; }
  const std::vector<PlanNodeRef>& children() const { return children_; }

  /// Stable canonical rendering of the whole subtree.
  virtual std::string Canonical() const = 0;

  /// FNV-1a hash of Canonical(); cached.
  uint64_t Signature() const;

 protected:
  PlanNode(PlanKind kind, Schema output_schema,
           std::vector<PlanNodeRef> children)
      : kind_(kind),
        output_schema_(std::move(output_schema)),
        children_(std::move(children)) {}

 private:
  PlanKind kind_;
  Schema output_schema_;
  std::vector<PlanNodeRef> children_;
  mutable uint64_t cached_signature_ = 0;
};

class ScanNode final : public PlanNode {
 public:
  /// Scans `table_name` (whose rows have `table_schema`), keeps rows where
  /// `predicate` holds, and outputs the columns in `projection` (indices
  /// into the table schema, in output order).
  ScanNode(std::string table_name, const Schema& table_schema,
           ExprRef predicate, std::vector<std::size_t> projection);

  const std::string& table_name() const { return table_name_; }
  const Schema& table_schema() const { return table_schema_; }
  const ExprRef& predicate() const { return predicate_; }
  const std::vector<std::size_t>& projection() const { return projection_; }

  std::string Canonical() const override;

 private:
  std::string table_name_;
  Schema table_schema_;
  ExprRef predicate_;
  std::vector<std::size_t> projection_;
};

/// Hash equi-join on single int64 key columns (covers every TPC-H/SSB
/// foreign key). Left child is the build side; output is left ⊕ right.
class JoinNode final : public PlanNode {
 public:
  JoinNode(PlanNodeRef build, PlanNodeRef probe, std::size_t build_key,
           std::size_t probe_key);

  const PlanNodeRef& build() const { return children()[0]; }
  const PlanNodeRef& probe() const { return children()[1]; }
  std::size_t build_key() const { return build_key_; }
  std::size_t probe_key() const { return probe_key_; }

  std::string Canonical() const override;

 private:
  std::size_t build_key_;
  std::size_t probe_key_;
};

class AggregateNode final : public PlanNode {
 public:
  /// Groups child rows by `group_by` (column indices into the child's
  /// output schema) and computes `aggs`. Output schema: group columns in
  /// order, then one column per aggregate (double for Sum/Avg/Min/Max over
  /// numerics, int64 for Count).
  AggregateNode(PlanNodeRef child, std::vector<std::size_t> group_by,
                std::vector<AggSpec> aggs);

  const PlanNodeRef& child() const { return children()[0]; }
  const std::vector<std::size_t>& group_by() const { return group_by_; }
  const std::vector<AggSpec>& aggs() const { return aggs_; }

  std::string Canonical() const override;

 private:
  std::vector<std::size_t> group_by_;
  std::vector<AggSpec> aggs_;
};

class SortNode final : public PlanNode {
 public:
  /// `limit` = 0 means full sort; otherwise only the first `limit` rows in
  /// key order are emitted (ORDER BY ... LIMIT k, evaluated as top-k).
  SortNode(PlanNodeRef child, std::vector<SortKey> keys,
           std::size_t limit = 0);

  const PlanNodeRef& child() const { return children()[0]; }
  const std::vector<SortKey>& keys() const { return keys_; }
  std::size_t limit() const { return limit_; }

  std::string Canonical() const override;

 private:
  std::vector<SortKey> keys_;
  std::size_t limit_;
};

/// FNV-1a 64-bit over `s` (exposed for tests).
uint64_t HashCanonical(const std::string& s);

}  // namespace sharing
