#include "exec/expr.h"

#include <cmath>

#include "common/logging.h"

namespace sharing {

std::string_view CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "==";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

std::string_view ArithOpToString(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
    case ArithOp::kMod:
      return "%";
  }
  return "?";
}

bool Expr::EvalBool(TupleRef row) const { return EvalInt64(row) != 0; }

std::string_view Expr::EvalString(TupleRef) const {
  SHARING_CHECK(false) << "EvalString on non-string expression";
  return {};
}

namespace {

class ColumnExpr final : public Expr {
 public:
  ColumnExpr(std::size_t index, ValueType type)
      : Expr(Kind::kColumn, type), index_(index) {}

  double EvalDouble(TupleRef row) const override {
    switch (output_type()) {
      case ValueType::kInt64:
        return static_cast<double>(row.GetInt64(index_));
      case ValueType::kDouble:
        return row.GetDouble(index_);
      case ValueType::kDate:
        return static_cast<double>(row.GetDate(index_).days_since_epoch);
      case ValueType::kString:
        break;
    }
    SHARING_CHECK(false) << "EvalDouble on string column";
    return 0;
  }

  int64_t EvalInt64(TupleRef row) const override {
    switch (output_type()) {
      case ValueType::kInt64:
        return row.GetInt64(index_);
      case ValueType::kDouble:
        return static_cast<int64_t>(row.GetDouble(index_));
      case ValueType::kDate:
        return row.GetDate(index_).days_since_epoch;
      case ValueType::kString:
        break;
    }
    SHARING_CHECK(false) << "EvalInt64 on string column";
    return 0;
  }

  std::string_view EvalString(TupleRef row) const override {
    SHARING_DCHECK(output_type() == ValueType::kString);
    return row.GetString(index_);
  }

  std::string Canonical() const override {
    std::string out = "c";
    out += std::to_string(index_);
    return out;
  }

  std::size_t index() const { return index_; }

 private:
  std::size_t index_;
};

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value v)
      : Expr(Kind::kLiteral, TypeOfValue(v)), value_(std::move(v)) {}

  double EvalDouble(TupleRef) const override {
    switch (output_type()) {
      case ValueType::kInt64:
        return static_cast<double>(std::get<int64_t>(value_));
      case ValueType::kDouble:
        return std::get<double>(value_);
      case ValueType::kDate:
        return static_cast<double>(std::get<Date>(value_).days_since_epoch);
      case ValueType::kString:
        break;
    }
    SHARING_CHECK(false) << "EvalDouble on string literal";
    return 0;
  }

  int64_t EvalInt64(TupleRef) const override {
    switch (output_type()) {
      case ValueType::kInt64:
        return std::get<int64_t>(value_);
      case ValueType::kDouble:
        return static_cast<int64_t>(std::get<double>(value_));
      case ValueType::kDate:
        return std::get<Date>(value_).days_since_epoch;
      case ValueType::kString:
        break;
    }
    SHARING_CHECK(false) << "EvalInt64 on string literal";
    return 0;
  }

  std::string_view EvalString(TupleRef) const override {
    SHARING_DCHECK(output_type() == ValueType::kString);
    return std::get<std::string>(value_);
  }

  std::string Canonical() const override { return ValueToString(value_); }

 private:
  Value value_;
};

/// Comparison specialised on the operand category decided at construction.
class CompareExpr final : public Expr {
 public:
  enum class Mode { kNumeric, kString };

  CompareExpr(CmpOp op, ExprRef lhs, ExprRef rhs, Mode mode)
      : Expr(Kind::kCompare, ValueType::kInt64),
        op_(op),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)),
        mode_(mode) {}

  bool EvalBool(TupleRef row) const override {
    if (mode_ == Mode::kString) {
      return Apply(lhs_->EvalString(row).compare(rhs_->EvalString(row)));
    }
    // Integer-exact when both sides are integral; double otherwise.
    if (lhs_->output_type() != ValueType::kDouble &&
        rhs_->output_type() != ValueType::kDouble) {
      int64_t l = lhs_->EvalInt64(row), r = rhs_->EvalInt64(row);
      return Apply(l < r ? -1 : (l > r ? 1 : 0));
    }
    double l = lhs_->EvalDouble(row), r = rhs_->EvalDouble(row);
    return Apply(l < r ? -1 : (l > r ? 1 : 0));
  }

  double EvalDouble(TupleRef row) const override {
    return EvalBool(row) ? 1.0 : 0.0;
  }
  int64_t EvalInt64(TupleRef row) const override {
    return EvalBool(row) ? 1 : 0;
  }

  std::string Canonical() const override {
    std::string out = "(";
    out += lhs_->Canonical();
    out += CmpOpToString(op_);
    out += rhs_->Canonical();
    out += ")";
    return out;
  }

 private:
  bool Apply(int cmp) const {
    switch (op_) {
      case CmpOp::kEq:
        return cmp == 0;
      case CmpOp::kNe:
        return cmp != 0;
      case CmpOp::kLt:
        return cmp < 0;
      case CmpOp::kLe:
        return cmp <= 0;
      case CmpOp::kGt:
        return cmp > 0;
      case CmpOp::kGe:
        return cmp >= 0;
    }
    return false;
  }

  CmpOp op_;
  ExprRef lhs_, rhs_;
  Mode mode_;
};

class AndExpr final : public Expr {
 public:
  explicit AndExpr(std::vector<ExprRef> children)
      : Expr(Kind::kAnd, ValueType::kInt64), children_(std::move(children)) {}

  bool EvalBool(TupleRef row) const override {
    for (const auto& c : children_) {
      if (!c->EvalBool(row)) return false;
    }
    return true;
  }
  double EvalDouble(TupleRef row) const override {
    return EvalBool(row) ? 1.0 : 0.0;
  }
  int64_t EvalInt64(TupleRef row) const override {
    return EvalBool(row) ? 1 : 0;
  }

  std::string Canonical() const override {
    std::string out = "and(";
    for (std::size_t i = 0; i < children_.size(); ++i) {
      if (i) out += ",";
      out += children_[i]->Canonical();
    }
    return out + ")";
  }

 private:
  std::vector<ExprRef> children_;
};

class OrExpr final : public Expr {
 public:
  explicit OrExpr(std::vector<ExprRef> children)
      : Expr(Kind::kOr, ValueType::kInt64), children_(std::move(children)) {}

  bool EvalBool(TupleRef row) const override {
    for (const auto& c : children_) {
      if (c->EvalBool(row)) return true;
    }
    return false;
  }
  double EvalDouble(TupleRef row) const override {
    return EvalBool(row) ? 1.0 : 0.0;
  }
  int64_t EvalInt64(TupleRef row) const override {
    return EvalBool(row) ? 1 : 0;
  }

  std::string Canonical() const override {
    std::string out = "or(";
    for (std::size_t i = 0; i < children_.size(); ++i) {
      if (i) out += ",";
      out += children_[i]->Canonical();
    }
    return out + ")";
  }

 private:
  std::vector<ExprRef> children_;
};

class NotExpr final : public Expr {
 public:
  explicit NotExpr(ExprRef child)
      : Expr(Kind::kNot, ValueType::kInt64), child_(std::move(child)) {}

  bool EvalBool(TupleRef row) const override { return !child_->EvalBool(row); }
  double EvalDouble(TupleRef row) const override {
    return EvalBool(row) ? 1.0 : 0.0;
  }
  int64_t EvalInt64(TupleRef row) const override {
    return EvalBool(row) ? 1 : 0;
  }

  std::string Canonical() const override {
    return "not(" + child_->Canonical() + ")";
  }

 private:
  ExprRef child_;
};

class ArithExpr final : public Expr {
 public:
  ArithExpr(ArithOp op, ExprRef lhs, ExprRef rhs, ValueType out)
      : Expr(Kind::kArith, out),
        op_(op),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}

  double EvalDouble(TupleRef row) const override {
    double l = lhs_->EvalDouble(row), r = rhs_->EvalDouble(row);
    switch (op_) {
      case ArithOp::kAdd:
        return l + r;
      case ArithOp::kSub:
        return l - r;
      case ArithOp::kMul:
        return l * r;
      case ArithOp::kDiv:
        return l / r;
      case ArithOp::kMod:
        return std::fmod(l, r);
    }
    return 0;
  }

  int64_t EvalInt64(TupleRef row) const override {
    if (output_type() == ValueType::kDouble) {
      return static_cast<int64_t>(EvalDouble(row));
    }
    int64_t l = lhs_->EvalInt64(row), r = rhs_->EvalInt64(row);
    switch (op_) {
      case ArithOp::kAdd:
        return l + r;
      case ArithOp::kSub:
        return l - r;
      case ArithOp::kMul:
        return l * r;
      case ArithOp::kDiv:
        SHARING_DCHECK(r != 0);
        return l / r;
      case ArithOp::kMod:
        SHARING_DCHECK(r != 0);
        return l % r;
    }
    return 0;
  }

  std::string Canonical() const override {
    std::string out = "(";
    out += lhs_->Canonical();
    out += ArithOpToString(op_);
    out += rhs_->Canonical();
    out += ")";
    return out;
  }

 private:
  ArithOp op_;
  ExprRef lhs_, rhs_;
};

}  // namespace

ExprRef Col(std::size_t index, ValueType type) {
  return std::make_shared<ColumnExpr>(index, type);
}

ExprRef ColNamed(const Schema& schema, const std::string& name) {
  auto idx_or = schema.ColumnIndex(name);
  SHARING_CHECK(idx_or.ok()) << idx_or.status().ToString();
  std::size_t idx = idx_or.value();
  return Col(idx, schema.column(idx).type);
}

ExprRef Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }

ExprRef Cmp(CmpOp op, ExprRef lhs, ExprRef rhs) {
  bool ls = lhs->output_type() == ValueType::kString;
  bool rs = rhs->output_type() == ValueType::kString;
  SHARING_CHECK(ls == rs) << "comparison between string and non-string";
  auto mode = ls ? CompareExpr::Mode::kString : CompareExpr::Mode::kNumeric;
  return std::make_shared<CompareExpr>(op, std::move(lhs), std::move(rhs),
                                       mode);
}

ExprRef Between(ExprRef e, Value lo, Value hi) {
  // Bind the copy explicitly: evaluation order of function arguments is
  // unspecified, so `e` must not be moved in the same call that copies it.
  ExprRef lower = Cmp(CmpOp::kGe, e, Lit(std::move(lo)));
  ExprRef upper = Cmp(CmpOp::kLe, std::move(e), Lit(std::move(hi)));
  return And(std::move(lower), std::move(upper));
}

ExprRef And(std::vector<ExprRef> children) {
  SHARING_CHECK(!children.empty());
  if (children.size() == 1) return children[0];
  return std::make_shared<AndExpr>(std::move(children));
}

ExprRef And(ExprRef a, ExprRef b) {
  return And(std::vector<ExprRef>{std::move(a), std::move(b)});
}

ExprRef Or(std::vector<ExprRef> children) {
  SHARING_CHECK(!children.empty());
  if (children.size() == 1) return children[0];
  return std::make_shared<OrExpr>(std::move(children));
}

ExprRef Or(ExprRef a, ExprRef b) {
  return Or(std::vector<ExprRef>{std::move(a), std::move(b)});
}

ExprRef Not(ExprRef e) { return std::make_shared<NotExpr>(std::move(e)); }

ExprRef Arith(ArithOp op, ExprRef lhs, ExprRef rhs) {
  SHARING_CHECK(lhs->output_type() != ValueType::kString &&
                rhs->output_type() != ValueType::kString)
      << "arithmetic on strings";
  ValueType out = (lhs->output_type() == ValueType::kDouble ||
                   rhs->output_type() == ValueType::kDouble)
                      ? ValueType::kDouble
                      : ValueType::kInt64;
  return std::make_shared<ArithExpr>(op, std::move(lhs), std::move(rhs), out);
}

ExprRef TruePredicate() {
  return Cmp(CmpOp::kEq, Lit(int64_t{1}), Lit(int64_t{1}));
}

}  // namespace sharing
