#include "io/io_scheduler.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/fault.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/trace.h"

namespace sharing {

namespace {

constexpr double kMiB = 1024.0 * 1024.0;

/// Trace span / instant names per priority class (index = IoPriority).
constexpr const char* kJobSpanName[kIoPriorityClasses] = {
    "io.prefetch", "io.faultback", "io.spill"};
constexpr const char* kEnqueueName[kIoPriorityClasses] = {
    "io.enqueue.prefetch", "io.enqueue.faultback", "io.enqueue.spill"};

/// Minimum burst so a single 8 KiB page job is always affordable from a
/// full bucket, even under a tiny configured rate.
constexpr double kMinBurstBytes = 64.0 * 1024.0;

bool IsReadClass(IoPriority priority) {
  return priority != IoPriority::kSpillWrite;
}

/// A failure worth re-attempting: the device or service glitched but may
/// recover. ENOSPC (kResourceExhausted), OutOfRange, and Aborted are
/// permanent as far as a retry loop is concerned.
bool IsTransient(const Status& st) {
  return st.code() == StatusCode::kIoError ||
         st.code() == StatusCode::kUnavailable;
}

/// Backoff doubling cap: one glitch should cost milliseconds, not pin an
/// I/O worker for seconds.
constexpr uint64_t kMaxBackoffMicros = 50'000;

/// Per-worker jitter stream. Seeded per thread from a global counter —
/// jitter only needs to decorrelate workers, not replay.
Rng& JitterRng() {
  static std::atomic<uint64_t> seq{0};
  thread_local Rng rng(0x6a09e667f3bcc909ull + seq.fetch_add(1));
  return rng;
}

}  // namespace

// ---------------------------------------------------------------------------
// IoTicket
// ---------------------------------------------------------------------------

Status IoTicket::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return state_ == State::kDone; });
  return status_;
}

bool IoTicket::done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_ == State::kDone;
}

bool IoTicket::TryCancel() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kQueued || cancelled_) return false;
  cancelled_ = true;
  return true;
}

void IoTicket::Complete(Status status) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    state_ = State::kDone;
    status_ = std::move(status);
  }
  cv_.notify_all();
}

// ---------------------------------------------------------------------------
// IoScheduler
// ---------------------------------------------------------------------------

IoScheduler::IoScheduler(Options options)
    : options_(options),
      reads_issued_(options_.metrics->GetCounter(metrics::kIoReadsIssued)),
      writes_issued_(options_.metrics->GetCounter(metrics::kIoWritesIssued)),
      stall_micros_(options_.metrics->GetCounter(metrics::kIoStallMicros)),
      retries_(options_.metrics->GetCounter(metrics::kIoRetries)),
      retry_gave_up_(options_.metrics->GetCounter(metrics::kIoRetryGaveUp)),
      queue_depth_(options_.metrics->GetGauge(metrics::kIoQueueDepth)),
      class_queue_depth_{
          options_.metrics->GetGauge(metrics::kIoQueueDepthPrefetch),
          options_.metrics->GetGauge(metrics::kIoQueueDepthFaultback),
          options_.metrics->GetGauge(metrics::kIoQueueDepthSpill)},
      class_stall_micros_{
          options_.metrics->GetCounter(metrics::kIoStallMicrosPrefetch),
          options_.metrics->GetCounter(metrics::kIoStallMicrosFaultback),
          options_.metrics->GetCounter(metrics::kIoStallMicrosSpill)},
      class_dispatch_wait_{
          options_.metrics->GetHistogram(metrics::kIoDispatchWaitPrefetch),
          options_.metrics->GetHistogram(metrics::kIoDispatchWaitFaultback),
          options_.metrics->GetHistogram(metrics::kIoDispatchWaitSpill)},
      rate_bytes_per_sec_(static_cast<double>(options_.budget_mib_per_sec) *
                          kMiB),
      burst_bytes_(std::max(kMinBurstBytes, rate_bytes_per_sec_ / 4.0)) {
  const auto now = std::chrono::steady_clock::now();
  for (Bucket& bucket : buckets_) {
    bucket.tokens = burst_bytes_;
    bucket.last = now;
  }
  const std::size_t threads = std::max<std::size_t>(1, options_.threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

IoScheduler::~IoScheduler() { Shutdown(); }

IoTicketRef IoScheduler::Submit(IoPriority priority, std::size_t bytes,
                                IoFn work, std::function<void()> on_skip) {
  auto ticket = std::make_shared<IoTicket>();
  const std::size_t cls = static_cast<std::size_t>(priority);
  const int64_t submit_micros = Trace::NowMicros();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return nullptr;
    queues_[cls].push_back(Job{ticket, priority, bytes, std::move(work),
                               std::move(on_skip), submit_micros});
    // Inside the lock: a worker Subs under the same lock at pop time, so
    // the gauges can never transiently go negative or miss a peak.
    queue_depth_->Add(1);
    class_queue_depth_[static_cast<std::size_t>(priority)]->Add(1);
  }
  if (IsReadClass(priority)) {
    reads_issued_->Increment();
  } else {
    writes_issued_->Increment();
  }
  if (Trace::enabled()) {
    const TraceArg arg{"bytes", static_cast<int64_t>(bytes)};
    Trace::RecordInstant("io", kEnqueueName[cls], /*query_id=*/0,
                         /*signature=*/0, &arg, 1);
  }
  cv_.notify_one();
  return ticket;
}

std::size_t IoScheduler::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t depth = 0;
  for (const auto& queue : queues_) depth += queue.size();
  return depth;
}

std::size_t IoScheduler::QueueDepth(IoPriority priority) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queues_[static_cast<std::size_t>(priority)].size();
}

void IoScheduler::RefillLocked(Bucket& bucket,
                               std::chrono::steady_clock::time_point now) {
  if (rate_bytes_per_sec_ <= 0) return;
  const double elapsed =
      std::chrono::duration<double>(now - bucket.last).count();
  bucket.last = now;
  bucket.tokens =
      std::min(burst_bytes_, bucket.tokens + elapsed * rate_bytes_per_sec_);
}

void IoScheduler::FinishJob(Job job, Status status) {
  // Destroy the job's captures (work/on_skip lambdas and everything they
  // own — page refs, SpilledPageRefs, governor handles) strictly BEFORE
  // completing the ticket: the moment Wait() returns, a waiter may tear
  // down the objects those captures point at (or drop the references
  // that keep this scheduler alive), so nothing of the job may survive
  // past the completion signal.
  IoTicketRef ticket = std::move(job.ticket);
  job.work = nullptr;
  job.on_skip = nullptr;
  ticket->Complete(std::move(status));
}

Status IoScheduler::RunAttempt(const Job& job) {
  if (FaultHit hit = SHARING_FAULT_POINT(fault_points::kIoDispatchDelay)) {
    // Payload = injected latency in micros (default 1ms): models a device
    // hiccup without failing the job.
    const int64_t micros = hit.payload > 0 ? hit.payload : 1000;
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
  if (SHARING_FAULT_POINT(fault_points::kIoDispatchFail)) {
    return Status::IoError("injected transient io dispatch failure");
  }
  return job.work ? job.work() : Status::OK();
}

Status IoScheduler::RunWithRetry(const Job& job) {
  Status st = RunAttempt(job);
  for (std::size_t attempt = 0;
       attempt < options_.retry_limit && IsTransient(st); ++attempt) {
    uint64_t backoff = options_.retry_backoff_micros;
    backoff = std::min(kMaxBackoffMicros, backoff << std::min<std::size_t>(
                                              attempt, 20));
    if (backoff > 0) {
      const int64_t jittered = JitterRng().UniformInt(
          static_cast<int64_t>(backoff / 2), static_cast<int64_t>(backoff));
      std::this_thread::sleep_for(std::chrono::microseconds(jittered));
    }
    retries_->Increment();
    st = RunAttempt(job);
  }
  if (options_.retry_limit > 0 && IsTransient(st)) {
    retry_gave_up_->Increment();
    SHARING_LOG(Warning) << "io job ("
                         << IoPriorityToString(job.priority)
                         << ") still failing after " << options_.retry_limit
                         << " retries: " << st.ToString();
  }
  return st;
}

void IoScheduler::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    bool throttled_jobs = false;
    std::array<bool, kIoPriorityClasses> class_throttled{};
    // Timed-wait bound when every non-empty class is throttled: the
    // earliest bucket recovery, capped at 1ms so a fresh submission to
    // an affordable class is picked up promptly even if its notify
    // races the wait.
    auto min_token_wait = std::chrono::microseconds(1000);
    bool progressed = false;
    for (std::size_t cls = 0; cls < kIoPriorityClasses && !progressed;
         ++cls) {
      auto& queue = queues_[cls];
      if (queue.empty()) continue;
      bool head_cancelled;
      {
        // A cancelled head job is discarded regardless of the bucket —
        // it consumes no tokens, so it must not wait for any.
        std::lock_guard<std::mutex> tlock(queue.front().ticket->mutex_);
        head_cancelled = queue.front().ticket->cancelled_;
      }
      if (head_cancelled) {
        Job job = std::move(queue.front());
        queue.pop_front();
        queue_depth_->Sub(1);
        class_queue_depth_[cls]->Sub(1);
        lock.unlock();  // skip hooks may take client locks
        if (job.on_skip) job.on_skip();
        FinishJob(std::move(job), Status::Aborted("io job cancelled"));
        lock.lock();
        progressed = true;
        continue;
      }
      Bucket& bucket = buckets_[cls];
      RefillLocked(bucket, now);
      // A positive bucket affords any job (the overdraft throttles the
      // next one), so jobs larger than the burst are never starved. The
      // affordability test precedes the claim: a class that cannot pay
      // yields to lower classes instead of head-of-line blocking them.
      const bool affordable = rate_bytes_per_sec_ <= 0 || bucket.tokens > 0;
      if (!affordable) {
        throttled_jobs = true;
        class_throttled[cls] = true;
        min_token_wait = std::min(
            min_token_wait,
            std::chrono::microseconds(
                1 + static_cast<int64_t>(-bucket.tokens /
                                         rate_bytes_per_sec_ * 1e6)));
        continue;
      }
      Job job = std::move(queue.front());
      queue.pop_front();
      queue_depth_->Sub(1);
      class_queue_depth_[cls]->Sub(1);
      // Claim atomically against TryCancel: once state_ is kRunning a
      // concurrent TryCancel returns false, so "TryCancel returned true"
      // really does guarantee the work never runs.
      bool run;
      {
        std::lock_guard<std::mutex> tlock(job.ticket->mutex_);
        run = !job.ticket->cancelled_;
        if (run) job.ticket->state_ = IoTicket::State::kRunning;
      }
      if (run) bucket.tokens -= static_cast<double>(job.bytes);
      lock.unlock();
      if (run) {
        // Submit→claim latency, by class: the queueing delay this job
        // actually paid under strict priority + token buckets.
        const int64_t wait_micros = Trace::NowMicros() - job.submit_micros;
        class_dispatch_wait_[cls]->Record(wait_micros);
        Status st;
        {
          TraceSpan span("io", kJobSpanName[cls]);
          span.AddArg("bytes", static_cast<int64_t>(job.bytes));
          span.AddArg("queue_wait_us", wait_micros);
          st = RunWithRetry(job);
        }
        FinishJob(std::move(job), std::move(st));
      } else {
        if (job.on_skip) job.on_skip();
        FinishJob(std::move(job), Status::Aborted("io job cancelled"));
      }
      lock.lock();
      progressed = true;
    }
    if (progressed) continue;
    if (throttled_jobs) {
      // Work is pending but every non-empty class's bucket is dry: an
      // I/O stall by construction. Only one worker at a time accounts
      // it, so io.stall_micros approximates *wall-clock* stall instead
      // of inflating by the number of idle workers.
      const bool account = !stall_accounted_.exchange(true);
      const auto t0 = std::chrono::steady_clock::now();
      cv_.wait_for(lock, min_token_wait);
      if (account) {
        const int64_t waited =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
        stall_micros_->Add(waited);
        // Attribute the same wall-clock window to every class that had
        // work pending on a dry bucket: per-class stalls answer "who is
        // starved", not "how much total" (that's the aggregate above).
        for (std::size_t cls = 0; cls < kIoPriorityClasses; ++cls) {
          if (class_throttled[cls]) class_stall_micros_[cls]->Add(waited);
        }
        stall_accounted_.store(false);
      }
      continue;
    }
    if (shutdown_) return;  // Shutdown drained the queues before waking us
    cv_.wait(lock, [&] {
      if (shutdown_) return true;
      for (const auto& queue : queues_) {
        if (!queue.empty()) return true;
      }
      return false;
    });
  }
}

void IoScheduler::Shutdown() {
  std::vector<Job> dropped;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    for (auto& queue : queues_) {
      for (auto& job : queue) dropped.push_back(std::move(job));
      queue.clear();
    }
  }
  cv_.notify_all();
  // Outside the lock: skip hooks may take client locks (e.g. a
  // SharedPagesList unmarking an in-flight spill victim).
  for (auto& job : dropped) {
    queue_depth_->Sub(1);
    class_queue_depth_[static_cast<std::size_t>(job.priority)]->Sub(1);
    if (job.on_skip) job.on_skip();
    FinishJob(std::move(job), Status::Aborted("io scheduler shut down"));
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

}  // namespace sharing
