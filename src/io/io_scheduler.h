// IoScheduler: the engine-wide asynchronous I/O service.
//
// The paper's disk-resident experiments (§2 "Sharing in the I/O layer",
// §6) depend on the I/O path never stalling the sharing fast path: SP
// producers must keep streaming at memory speed while disk traffic —
// spill writes, fault-back reads, circular-scan readahead — is scheduled
// separately, by priority. This module is that separation: a small pool
// of I/O worker threads draining three strict priority classes
//
//     kScanPrefetch  >  kFaultBack  >  kSpillWrite
//
// (readahead keeps every consumer of a shared circular scan moving;
// fault-backs unblock a reader that is already waiting; spill writes are
// pure background — nobody waits on durability except the memory budget).
// Each class has its own token-bucket byte budget derived from the same
// MiB/s notion as `DiskOptions`' bandwidth model, so a saturated class
// throttles itself instead of starving the others; time spent waiting for
// tokens while work was pending is charged to `io.stall_micros`.
//
// Callers get an `IoTicket` — a tiny completion future with
// best-effort cancellation. A job whose ticket is cancelled before a
// worker picks it up never runs (its `on_skip` hook fires instead, so
// owners can roll back bookkeeping); a running job always completes.
// Every client of the scheduler treats unfinished I/O as "state stays in
// memory", which is what makes cancellation and shutdown safe: a skipped
// spill write leaves its page resident, a skipped prefetch is just a
// future buffer-pool miss.
//
// Observability: `io.reads_issued` / `io.writes_issued` (jobs submitted
// per direction), `io.queue_depth` (gauge over queued-not-yet-running
// jobs, with high-water mark), `io.stall_micros` (token-bucket waits) —
// plus the per-class views `io.queue_depth.{prefetch,faultback,spill}`
// and `io.stall_micros.{prefetch,faultback,spill}`, which say *which*
// class is backed up or starved when the aggregates only say "some".
// See DESIGN.md decision #9 and docs/METRICS.md.
//
// Ownership: the scheduler's creator owns its lifetime and must call
// Shutdown() (or let the destructor run, on a non-worker thread) when
// tearing down. Queued jobs may hold shared_ptrs to their submitters
// (e.g. spill jobs pin the SpBudgetGovernor) — submitters must therefore
// never hold the scheduler strongly themselves (the governor keeps a
// weak_ptr), or destroying the last job capture on a worker would make
// that worker destroy, and self-join, its own scheduler. QPipeEngine
// shuts its scheduler down in its destructor, after the stages have
// drained.

#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/status.h"

namespace sharing {

/// Strict priority classes, highest first. The class also names the I/O
/// direction for metrics: the two read classes count `io.reads_issued`,
/// spill writes count `io.writes_issued`.
enum class IoPriority : uint8_t {
  kScanPrefetch = 0,  // circular-scan readahead (paces every scan consumer)
  kFaultBack = 1,     // spilled-page reads a waiting reader demands
  kSpillWrite = 2,    // background spill writes (only the budget waits)
};

inline constexpr std::size_t kIoPriorityClasses = 3;

inline std::string_view IoPriorityToString(IoPriority p) {
  switch (p) {
    case IoPriority::kScanPrefetch:
      return "scan-prefetch";
    case IoPriority::kFaultBack:
      return "fault-back";
    case IoPriority::kSpillWrite:
      return "spill-write";
  }
  return "?";
}

/// Completion handle for one submitted job. Created by the scheduler;
/// shared between the submitter and the worker that runs the job.
class IoTicket {
 public:
  IoTicket() = default;
  SHARING_DISALLOW_COPY_AND_MOVE(IoTicket);

  /// Blocks until the job finishes (or is cancelled / dropped at
  /// shutdown) and returns its final status. Cancelled and shutdown-
  /// dropped jobs report Aborted.
  Status Wait();

  /// Non-blocking completion probe.
  bool done() const;

  /// Best-effort cancellation: returns true iff the job had not started,
  /// in which case it is guaranteed never to run (the worker discards it
  /// and fires the job's on_skip hook). A running or finished job
  /// returns false and is unaffected.
  bool TryCancel();

 private:
  friend class IoScheduler;

  enum class State : uint8_t { kQueued, kRunning, kDone };

  void Complete(Status status);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  State state_ = State::kQueued;
  bool cancelled_ = false;
  Status status_;
};

using IoTicketRef = std::shared_ptr<IoTicket>;

class IoScheduler {
 public:
  struct Options {
    /// I/O worker threads (at least 1).
    std::size_t threads = 2;

    /// Per-class token-bucket refill rate in MiB/s; 0 = unthrottled.
    /// Matches the MiB/s unit of DiskOptions::read_bandwidth_mib, so a
    /// disk-resident configuration can cap scheduler traffic at the
    /// modeled device bandwidth.
    std::size_t budget_mib_per_sec = 0;

    /// Re-attempts granted to a job whose work body fails with a
    /// *transient* status (kIoError / kUnavailable) before the failure is
    /// surfaced on the ticket. 0 disables retry. Each re-attempt waits an
    /// exponentially growing, jittered backoff on the worker thread, so a
    /// glitching device is retried without hammering it in lockstep.
    /// Permanent failures (OutOfRange, ResourceExhausted/ENOSPC, Aborted)
    /// are never retried — retrying ENOSPC just burns the backoff budget.
    std::size_t retry_limit = 0;

    /// First backoff in microseconds; doubles per attempt (capped at
    /// 50ms) with uniform jitter in [backoff/2, backoff].
    uint32_t retry_backoff_micros = 200;

    MetricsRegistry* metrics = &MetricsRegistry::Global();
  };

  /// The work body a job runs on a worker thread; its status becomes the
  /// ticket's final status.
  using IoFn = std::function<Status()>;

  explicit IoScheduler(Options options);
  ~IoScheduler();

  SHARING_DISALLOW_COPY_AND_MOVE(IoScheduler);

  /// Enqueues `work` under `priority`; `bytes` is the job's size for the
  /// class's token bucket. `on_skip` (optional) fires exactly when the
  /// job will never run — cancelled before start, or dropped by
  /// Shutdown — so the owner can roll back any "I/O in flight"
  /// bookkeeping. Returns nullptr after Shutdown (callers fall back to
  /// synchronous I/O or decline).
  IoTicketRef Submit(IoPriority priority, std::size_t bytes, IoFn work,
                     std::function<void()> on_skip = {});

  /// Stops accepting work, drops queued jobs (tickets complete Aborted,
  /// on_skip hooks fire), lets running jobs finish, joins workers.
  /// Idempotent; also run by the destructor.
  void Shutdown();

  std::size_t threads() const { return workers_.size(); }

  /// Jobs queued and not yet picked up, across all classes.
  std::size_t QueueDepth() const;

  /// Jobs queued in one priority class (the watchdog's per-class
  /// saturation probe — mirrors the io.queue_depth.* gauges but reads
  /// the queue directly, so it needs no registry round-trip).
  std::size_t QueueDepth(IoPriority priority) const;

 private:
  struct Job {
    IoTicketRef ticket;
    IoPriority priority = IoPriority::kSpillWrite;
    std::size_t bytes = 0;
    IoFn work;
    std::function<void()> on_skip;
    /// Submission timestamp (trace timebase micros): the worker charges
    /// claim-time minus this to the class's io.dispatch_wait histogram.
    int64_t submit_micros = 0;
  };

  /// One class's byte bucket. Guarded by mutex_. Tokens may go negative
  /// (an oversized job runs when the bucket is positive and leaves debt),
  /// which keeps long-run throughput at the configured rate without
  /// starving jobs larger than the burst.
  struct Bucket {
    double tokens = 0;
    std::chrono::steady_clock::time_point last{};
  };

  void WorkerLoop();
  void RefillLocked(Bucket& bucket, std::chrono::steady_clock::time_point now);

  /// One execution of the job's work body, with the io.dispatch.* fault
  /// points (injected latency / transient failure) applied around it.
  Status RunAttempt(const Job& job);

  /// RunAttempt plus the transient-failure retry policy: up to
  /// options_.retry_limit re-attempts with exponential backoff + jitter,
  /// counting io.retries per re-attempt and io.retry_gave_up when the
  /// budget is exhausted with the failure still transient.
  Status RunWithRetry(const Job& job);

  /// Destroys the job's captures, then completes its ticket with
  /// `status` — in that order, because a waiter may tear down everything
  /// the captures reference (including this scheduler's last owner) the
  /// moment Wait() returns.
  static void FinishJob(Job job, Status status);

  Options options_;
  Counter* reads_issued_;
  Counter* writes_issued_;
  Counter* stall_micros_;
  Counter* retries_;
  Counter* retry_gave_up_;
  Gauge* queue_depth_;
  /// Per-class views of the two aggregates above, indexed by IoPriority.
  std::array<Gauge*, kIoPriorityClasses> class_queue_depth_;
  std::array<Counter*, kIoPriorityClasses> class_stall_micros_;
  /// Per-class submit→claim latency (io.dispatch_wait.{prefetch,
  /// faultback,spill}) — the queueing delay a strict-priority class
  /// actually experienced, as distinct from token-bucket stalls.
  std::array<Histogram*, kIoPriorityClasses> class_dispatch_wait_;

  const double rate_bytes_per_sec_;
  const double burst_bytes_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::array<std::deque<Job>, kIoPriorityClasses> queues_;
  std::array<Bucket, kIoPriorityClasses> buckets_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
  /// True while one worker owns the stall-accounting window; keeps
  /// io.stall_micros a wall-clock measure, not a per-worker sum.
  std::atomic<bool> stall_accounted_{false};
};

}  // namespace sharing
