// Deterministic random generators for data generation and workload
// parameterization (uniform, alpha strings, zipfian skew).

#pragma once

#include <cstdint>
#include <string>

#include "common/logging.h"

namespace sharing {

/// xoshiro256** — fast, high-quality, seedable; one instance per generator
/// thread so data generation is reproducible and parallelizable.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  uint64_t Next();

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform in [0, 1).
  double UniformDouble();

  /// Uniform in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Random uppercase-alpha string of exactly `len` characters.
  std::string AlphaString(std::size_t len);

 private:
  uint64_t s_[4];
};

/// Zipfian distribution over [0, n) with skew theta (0 = uniform-ish,
/// ~0.99 = classic YCSB skew). Used for skewed query-template popularity.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42);

  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  Rng rng_;
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

}  // namespace sharing
