#include "common/fault.h"

#include <cstdlib>

namespace sharing {

namespace {

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

Status FaultRegistry::Arm(const std::string& spec) {
  uint64_t seed = 42;
  std::unordered_map<std::string, PointState> points;

  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;

    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= entry.size()) {
      return Status::InvalidArgument("fault spec entry '" + entry +
                                     "' is not <point>=<trigger>");
    }
    std::string point = entry.substr(0, eq);
    std::string trigger = entry.substr(eq + 1);

    if (point == "seed") {
      char* rest = nullptr;
      seed = std::strtoull(trigger.c_str(), &rest, 10);
      if (rest == nullptr || *rest != '\0') {
        return Status::InvalidArgument("fault spec seed '" + trigger +
                                       "' is not an integer");
      }
      continue;
    }

    PointState state;
    const std::size_t star = trigger.find('*');
    if (star != std::string::npos) {
      char* rest = nullptr;
      state.payload = std::strtoll(trigger.c_str() + star + 1, &rest, 10);
      if (rest == nullptr || *rest != '\0') {
        return Status::InvalidArgument("fault spec payload in '" + entry +
                                       "' is not an integer");
      }
      trigger = trigger.substr(0, star);
    }
    if (trigger == "once") {
      state.mode = Mode::kOnce;
    } else if (!trigger.empty() && trigger[0] == 'p') {
      state.mode = Mode::kProbability;
      char* rest = nullptr;
      state.probability = std::strtod(trigger.c_str() + 1, &rest);
      if (rest == trigger.c_str() + 1 || rest == nullptr || *rest != '\0' ||
          state.probability < 0 || state.probability > 1) {
        return Status::InvalidArgument("fault spec probability in '" + entry +
                                       "' is not in [0,1]");
      }
    } else if (!trigger.empty() && trigger[0] == 'n') {
      state.mode = Mode::kEveryNth;
      char* rest = nullptr;
      state.every_n = std::strtoull(trigger.c_str() + 1, &rest, 10);
      if (rest == nullptr || *rest != '\0' || state.every_n == 0) {
        return Status::InvalidArgument("fault spec period in '" + entry +
                                       "' is not a positive integer");
      }
    } else {
      return Status::InvalidArgument("fault spec trigger '" + trigger +
                                     "' is not p<prob>, n<N>, or once");
    }
    points[std::move(point)] = std::move(state);
  }

  std::lock_guard<std::mutex> lock(mutex_);
  // Per-point deterministic streams: seed ^ hash(point) decouples the
  // points so adding one never shifts another's fire ordinals.
  for (auto& [name, state] : points) {
    state.rng = Rng(seed ^ Fnv1a(name));
  }
  points_ = std::move(points);
  seed_ = seed;
  spec_ = spec;
  armed_points_.store(static_cast<int>(points_.size()),
                      std::memory_order_relaxed);
  return Status::OK();
}

void FaultRegistry::Disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.clear();
  spec_.clear();
  armed_points_.store(0, std::memory_order_relaxed);
}

FaultHit FaultRegistry::Check(const char* point) {
  if (armed_points_.load(std::memory_order_relaxed) == 0) return {};
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  if (it == points_.end()) return {};
  PointState& state = it->second;
  ++state.triggers;
  bool fire = false;
  switch (state.mode) {
    case Mode::kProbability:
      fire = state.rng.Bernoulli(state.probability);
      break;
    case Mode::kEveryNth:
      fire = state.triggers % state.every_n == 0;
      break;
    case Mode::kOnce:
      fire = state.triggers == 1;
      break;
  }
  if (!fire) return {};
  ++state.fires;
  if (injected_ != nullptr) injected_->Increment();
  return FaultHit{true, state.payload};
}

void FaultRegistry::BindMetrics(MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mutex_);
  injected_ = metrics->GetCounter(metrics::kFaultInjected);
}

std::string FaultRegistry::DescribeJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"armed\":";
  out += points_.empty() ? "false" : "true";
  out += ",\"seed\":" + std::to_string(seed_);
  out += ",\"spec\":\"";
  for (char c : spec_) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += "\",\"points\":[";
  bool first = true;
  for (const auto& [name, state] : points_) {
    if (!first) out += ',';
    first = false;
    out += "{\"point\":\"" + name + "\",\"mode\":\"";
    switch (state.mode) {
      case Mode::kProbability:
        out += "p\",\"arg\":" + std::to_string(state.probability);
        break;
      case Mode::kEveryNth:
        out += "n\",\"arg\":" + std::to_string(state.every_n);
        break;
      case Mode::kOnce:
        out += "once\",\"arg\":1";
        break;
    }
    out += ",\"payload\":" + std::to_string(state.payload);
    out += ",\"triggers\":" + std::to_string(state.triggers);
    out += ",\"fires\":" + std::to_string(state.fires);
    out += '}';
  }
  out += "]}";
  return out;
}

uint64_t FaultRegistry::TotalFires() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t fires = 0;
  for (const auto& [name, state] : points_) fires += state.fires;
  return fires;
}

}  // namespace sharing
