// Fixed-size worker pool. QPipe gives each stage a local pool; the client
// driver uses one for closed-loop query submission.

#pragma once

#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/concurrent_queue.h"
#include "common/macros.h"

namespace sharing {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Joins all workers; pending tasks are still executed.
  ~ThreadPool();

  SHARING_DISALLOW_COPY_AND_MOVE(ThreadPool);

  /// Schedules a task. Returns false if the pool is shutting down.
  bool Submit(std::function<void()> task);

  /// Schedules a task and returns a future for its completion.
  template <typename Fn>
  auto SubmitWithFuture(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    Submit([task] { (*task)(); });
    return fut;
  }

  /// Stops accepting tasks, runs what is queued, joins workers. Idempotent.
  void Shutdown();

  std::size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  ConcurrentQueue<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
};

}  // namespace sharing
