#include "common/metrics_format.h"

namespace sharing {

namespace {

bool ValidPrometheusFirstChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool ValidPrometheusChar(char c) {
  return ValidPrometheusFirstChar(c) || (c >= '0' && c <= '9');
}

void AppendSample(std::string* out, const std::string& name,
                  const char* label, int64_t value) {
  *out += name;
  *out += label;  // "" or a {quantile="..."} block
  *out += ' ';
  *out += std::to_string(value);
  *out += '\n';
}

}  // namespace

std::string PrometheusMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    out.push_back(ValidPrometheusChar(c) ? c : '_');
  }
  if (out.empty() || !ValidPrometheusFirstChar(out.front())) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string MetricsJsonLine(const MetricsSnapshot& snapshot,
                            int64_t uptime_ms) {
  std::string out =
      "{\"uptime_ms\":" + std::to_string(uptime_ms) + ",\"metrics\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += name;  // metric names are [a-z0-9_.]: no escaping needed
    out += "\":";
    out += std::to_string(value);
  }
  out += "}}";
  return out;
}

std::string MetricsPrometheusText(const TypedMetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusMetricName(name);
    out += "# TYPE " + prom + " counter\n";
    AppendSample(&out, prom, "", value);
  }
  for (const auto& [name, gauge] : snapshot.gauges) {
    const std::string prom = PrometheusMetricName(name);
    out += "# TYPE " + prom + " gauge\n";
    AppendSample(&out, prom, "", gauge.value);
    const std::string hwm = prom + "_hwm";
    out += "# TYPE " + hwm + " gauge\n";
    AppendSample(&out, hwm, "", gauge.high_water);
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string prom = PrometheusMetricName(name);
    out += "# TYPE " + prom + " summary\n";
    AppendSample(&out, prom, "{quantile=\"0.5\"}", hist.p50);
    AppendSample(&out, prom, "{quantile=\"0.95\"}", hist.p95);
    AppendSample(&out, prom, "{quantile=\"0.99\"}", hist.p99);
    AppendSample(&out, prom + "_sum", "", hist.sum);
    AppendSample(&out, prom + "_count", "", hist.count);
  }
  return out;
}

}  // namespace sharing
