// Blocking MPMC queue used for stage work queues and client coordination.

#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "common/macros.h"

namespace sharing {

/// Unbounded blocking queue. Push never blocks; Pop blocks until an element
/// arrives or the queue is closed. After Close(), Pop drains remaining
/// elements and then returns nullopt.
template <typename T>
class ConcurrentQueue {
 public:
  ConcurrentQueue() = default;
  SHARING_DISALLOW_COPY_AND_MOVE(ConcurrentQueue);

  /// Enqueues an element. Returns false if the queue is closed (element is
  /// dropped).
  bool Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an element is available or the queue is closed and empty.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Closes the queue: subsequent Push calls fail, and Pop returns nullopt
  /// once drained.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t Size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace sharing
