#include "common/status.h"

namespace sharing {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace sharing
