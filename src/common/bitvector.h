// QuerySet: the bitmap that correlates tuples to queries in a Global Query
// Plan (paper Figure 1b).
//
// CJOIN annotates every fact tuple with a QuerySet whose bit q means "this
// tuple is still relevant to query q". Shared hash-joins AND the fact
// tuple's set with the matching dimension tuple's set; a tuple whose set
// becomes empty is dropped. The capacity is fixed at pipeline construction
// (the paper's CJOIN does the same: the bitmap width bounds concurrent
// admitted queries).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/macros.h"

namespace sharing {

class QuerySet {
 public:
  QuerySet() = default;

  /// Creates an empty set able to hold bits [0, capacity).
  explicit QuerySet(std::size_t capacity)
      : capacity_(capacity), words_((capacity + 63) / 64, 0) {}

  /// Creates a set with bits [0, capacity) all set.
  static QuerySet AllSet(std::size_t capacity) {
    QuerySet s(capacity);
    for (std::size_t i = 0; i < s.words_.size(); ++i) s.words_[i] = ~0ull;
    s.ClearTailBits();
    return s;
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t num_words() const { return words_.size(); }

  void Set(std::size_t bit) {
    SHARING_DCHECK(bit < capacity_);
    words_[bit >> 6] |= (1ull << (bit & 63));
  }

  void Clear(std::size_t bit) {
    SHARING_DCHECK(bit < capacity_);
    words_[bit >> 6] &= ~(1ull << (bit & 63));
  }

  bool Test(std::size_t bit) const {
    SHARING_DCHECK(bit < capacity_);
    return (words_[bit >> 6] >> (bit & 63)) & 1u;
  }

  void Reset() {
    for (auto& w : words_) w = 0;
  }

  /// In-place intersection; the core operation of shared hash-joins.
  /// Returns true iff the result is non-empty (short-circuit for routing).
  bool IntersectWith(const QuerySet& other) {
    SHARING_DCHECK(capacity_ == other.capacity_);
    uint64_t any = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] &= other.words_[i];
      any |= words_[i];
    }
    return any != 0;
  }

  /// In-place union (used when admitting batches of queries).
  void UnionWith(const QuerySet& other) {
    SHARING_DCHECK(capacity_ == other.capacity_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] |= other.words_[i];
    }
  }

  /// Removes every bit present in `other` (query completion).
  void SubtractAll(const QuerySet& other) {
    SHARING_DCHECK(capacity_ == other.capacity_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] &= ~other.words_[i];
    }
  }

  bool Any() const {
    for (auto w : words_)
      if (w) return true;
    return false;
  }

  bool None() const { return !Any(); }

  std::size_t Count() const {
    std::size_t n = 0;
    for (auto w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
  }

  /// Invokes `fn(bit_index)` for every set bit, ascending. This is how the
  /// CJOIN distributor fans a joined tuple out to its queries.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w) {
        unsigned tz = static_cast<unsigned>(__builtin_ctzll(w));
        fn(wi * 64 + tz);
        w &= w - 1;
      }
    }
  }

  /// Raw word access for serializing into tuple payloads.
  const uint64_t* words() const { return words_.data(); }
  uint64_t* mutable_words() { return words_.data(); }

  bool operator==(const QuerySet& other) const {
    return capacity_ == other.capacity_ && words_ == other.words_;
  }

  /// E.g. "{0,3,17}".
  std::string ToString() const;

 private:
  void ClearTailBits() {
    std::size_t tail = capacity_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (1ull << tail) - 1;
    }
  }

  std::size_t capacity_ = 0;
  std::vector<uint64_t> words_;
};

// ---------------------------------------------------------------------------
// Fixed-width bitmap view over raw memory. Hot paths (shared hash-join
// probes) operate on bitmaps embedded in tuple payloads without
// materializing a QuerySet.
// ---------------------------------------------------------------------------

/// ANDs `n_words` of `src` into `dst`, returning true iff the result has any
/// set bit.
inline bool BitmapAndInPlace(uint64_t* dst, const uint64_t* src,
                             std::size_t n_words) {
  uint64_t any = 0;
  for (std::size_t i = 0; i < n_words; ++i) {
    dst[i] &= src[i];
    any |= dst[i];
  }
  return any != 0;
}

inline bool BitmapAny(const uint64_t* words, std::size_t n_words) {
  for (std::size_t i = 0; i < n_words; ++i)
    if (words[i]) return true;
  return false;
}

}  // namespace sharing
