// Tiny test-and-test-and-set spinlock for very short critical sections
// (circular-scan cursor bumps, metrics counters).

#pragma once

#include <atomic>

#include "common/macros.h"

namespace sharing {

class SpinLatch {
 public:
  SpinLatch() = default;
  SHARING_DISALLOW_COPY_AND_MOVE(SpinLatch);

  void Lock() {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
  }

  bool TryLock() { return !flag_.exchange(true, std::memory_order_acquire); }

  void Unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// RAII guard for SpinLatch.
class SpinLatchGuard {
 public:
  explicit SpinLatchGuard(SpinLatch& latch) : latch_(latch) { latch_.Lock(); }
  ~SpinLatchGuard() { latch_.Unlock(); }
  SHARING_DISALLOW_COPY_AND_MOVE(SpinLatchGuard);

 private:
  SpinLatch& latch_;
};

}  // namespace sharing
