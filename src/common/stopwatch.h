// Wall-clock and CPU-time measurement used by the experiment harness.
//
// Scenario I in the paper reports both response time and CPU utilization;
// CpuTimer exposes process CPU time (user+system) so benchmarks can report
// "CPU seconds per wall second" as the utilization proxy.

#pragma once

#include <chrono>
#include <cstdint>

namespace sharing {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Process-wide CPU time (user + system), in seconds.
double ProcessCpuSeconds();

/// Measures CPU seconds consumed between construction and Elapsed().
class CpuTimer {
 public:
  CpuTimer() : start_(ProcessCpuSeconds()) {}
  void Restart() { start_ = ProcessCpuSeconds(); }
  double ElapsedSeconds() const { return ProcessCpuSeconds() - start_; }

 private:
  double start_;
};

}  // namespace sharing
