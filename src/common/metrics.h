// Engine-wide metrics: named monotonic counters grouped in a registry.
//
// The demo's GUI surfaces system measurements next to every plot (CPU
// times, SP opportunities exploited per stage, pages copied vs shared,
// buffer-pool hits). Components increment counters through a
// MetricsRegistry; benchmarks snapshot-and-diff around measurement windows.

#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/macros.h"

namespace sharing {

/// One cache line: hot metric objects are padded and aligned to it so
/// two independently updated counters allocated back-to-back (the
/// registry allocates each separately, but small allocations share
/// malloc bins) never false-share a line — a counter bump on one core
/// must not invalidate an unrelated counter's line on another.
inline constexpr std::size_t kMetricCacheLine = 64;

/// A single monotonic counter. Thread-safe, relaxed ordering (metrics are
/// advisory, never used for synchronization). Cache-line padded: hot
/// counters like `sp.pages_retained`'s neighbors are updated from many
/// threads at once.
class alignas(kMetricCacheLine) Counter {
 public:
  Counter() = default;
  SHARING_DISALLOW_COPY_AND_MOVE(Counter);

  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t Get() const { return value_.load(std::memory_order_relaxed); }

 private:
  // alignas on the class rounds sizeof up to the full line — no manual
  // padding needed (the static_assert pins it).
  std::atomic<int64_t> value_{0};
};
static_assert(sizeof(Counter) == kMetricCacheLine);

/// A lock-free log-bucketed histogram for latency-style measurements.
/// Values are bucketed by power-of-two magnitude (64 buckets cover the
/// whole int64 range), so Record is one CLZ plus one relaxed fetch_add and
/// percentile queries are accurate to within a factor of two — plenty for
/// the order-of-magnitude latency comparisons the scenarios report.
class Histogram {
 public:
  Histogram() = default;
  SHARING_DISALLOW_COPY_AND_MOVE(Histogram);

  void Record(int64_t value) {
    counts_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    // Track the recorded extrema so quantile estimates can be clamped
    // into the range actually observed (a bucket's geometric middle can
    // otherwise report above the max — e.g. a single value of exactly
    // 2^b estimates 1.5 * 2^b — or a nonsense positive value for
    // negative recordings, which all land in bucket 0).
    int64_t lo = min_.load(std::memory_order_relaxed);
    while (value < lo &&
           !min_.compare_exchange_weak(lo, value, std::memory_order_relaxed)) {
    }
    int64_t hi = max_.load(std::memory_order_relaxed);
    while (value > hi &&
           !max_.compare_exchange_weak(hi, value, std::memory_order_relaxed)) {
    }
  }

  int64_t TotalCount() const;

  /// Sum of every recorded value (the Prometheus summary `_sum` series).
  int64_t RecordedSum() const { return sum_.load(std::memory_order_relaxed); }

  /// Smallest / largest value ever recorded (0 when empty).
  int64_t RecordedMin() const;
  int64_t RecordedMax() const;

  /// Mean of recorded values (0 when empty).
  double Mean() const;

  /// Value at quantile `q` in [0,1], approximated by the geometric middle
  /// of the bucket containing it and clamped to [RecordedMin,
  /// RecordedMax]. Returns 0 when empty.
  int64_t ValueAtQuantile(double q) const;

  /// "count=N mean=M p50=.. p95=.. p99=.." (values in recorded units).
  std::string ToString() const;

 private:
  static constexpr int kBuckets = 64;

  static int BucketFor(int64_t value) {
    if (value <= 0) return 0;
    return 63 - __builtin_clzll(static_cast<uint64_t>(value));
  }

  std::atomic<int64_t> counts_[kBuckets] = {};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{std::numeric_limits<int64_t>::max()};
  std::atomic<int64_t> max_{std::numeric_limits<int64_t>::min()};
};

/// A bidirectional instantaneous value (e.g. pages currently retained by a
/// sharing channel) that also tracks its high-water mark. Thread-safe,
/// relaxed ordering like Counter, and cache-line padded like it (the
/// value and its high-water mark share one line by design — they are
/// always touched together).
class alignas(kMetricCacheLine) Gauge {
 public:
  Gauge() = default;
  SHARING_DISALLOW_COPY_AND_MOVE(Gauge);

  void Add(int64_t delta) {
    int64_t now = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    int64_t hwm = high_water_.load(std::memory_order_relaxed);
    while (now > hwm &&
           !high_water_.compare_exchange_weak(hwm, now,
                                              std::memory_order_relaxed)) {
    }
  }
  void Sub(int64_t delta) { Add(-delta); }

  /// Overwrites the value (last writer wins) and updates the high-water
  /// mark. For gauges with "most recent observation" semantics (e.g.
  /// policy.confidence) as opposed to the Add/Sub accounting gauges.
  void Set(int64_t value) {
    value_.store(value, std::memory_order_relaxed);
    int64_t hwm = high_water_.load(std::memory_order_relaxed);
    while (value > hwm &&
           !high_water_.compare_exchange_weak(hwm, value,
                                              std::memory_order_relaxed)) {
    }
  }

  int64_t Get() const { return value_.load(std::memory_order_relaxed); }

  /// Largest value ever observed (never reset; scope with snapshots).
  int64_t HighWaterMark() const {
    return high_water_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> high_water_{0};
};
static_assert(sizeof(Gauge) == kMetricCacheLine);

/// A point-in-time copy of all counters in a registry.
using MetricsSnapshot = std::map<std::string, int64_t>;

/// A structured point-in-time copy of a registry that preserves metric
/// *kinds*. The flat MetricsSnapshot above is the lossy projection of
/// this (see FlattenTypedSnapshot) — exporters that must distinguish a
/// counter from a gauge from a histogram (the Prometheus text format
/// does) consume this form instead.
struct TypedMetricsSnapshot {
  struct GaugeValue {
    int64_t value = 0;
    int64_t high_water = 0;
  };
  struct HistogramValue {
    int64_t count = 0;
    int64_t sum = 0;
    int64_t p50 = 0;
    int64_t p95 = 0;
    int64_t p99 = 0;
  };
  std::map<std::string, int64_t> counters;
  std::map<std::string, GaugeValue> gauges;
  std::map<std::string, HistogramValue> histograms;
};

/// Projects a typed snapshot onto the flat name->value map: every gauge
/// contributes `name` + `name.hwm`, every histogram `name.count` /
/// `.p50` / `.p95` / `.p99`. MetricsRegistry::Snapshot() is defined as
/// this projection of SnapshotTyped(), so the two can never drift.
MetricsSnapshot FlattenTypedSnapshot(const TypedMetricsSnapshot& typed);

/// Named counter registry. Counter objects are stable: a returned pointer
/// remains valid for the registry's lifetime, so hot paths can cache it.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  SHARING_DISALLOW_COPY_AND_MOVE(MetricsRegistry);

  /// Returns the counter registered under `name`, creating it on first use.
  Counter* GetCounter(const std::string& name);

  /// Returns the histogram registered under `name`, creating it on first
  /// use. Pointers are stable for the registry's lifetime.
  Histogram* GetHistogram(const std::string& name);

  /// Returns the gauge registered under `name`, creating it on first use.
  /// Pointers are stable for the registry's lifetime.
  Gauge* GetGauge(const std::string& name);

  /// Includes every counter under its name, every gauge under both
  /// `name` (current value) and `name + ".hwm"` (high-water mark), and
  /// every histogram under `name + ".count"` / `".p50"` / `".p95"` /
  /// `".p99"`. Counts delta cleanly; quantile keys are point-in-time
  /// estimates over the histogram's whole life, so their Delta is a
  /// drift signal, not a windowed quantile. Exactly
  /// FlattenTypedSnapshot(SnapshotTyped()).
  MetricsSnapshot Snapshot() const;

  /// Like Snapshot() but kind-preserving — the form the Prometheus
  /// exporter (and any other kind-aware serializer) consumes.
  TypedMetricsSnapshot SnapshotTyped() const;

  /// Returns per-counter deltas `after - before` (counters absent from
  /// `before` count from zero).
  static MetricsSnapshot Delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after);

  /// Zeroes nothing (counters are monotonic); use Snapshot/Delta to scope
  /// measurements. Provided for tests that want a fresh registry instead.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
};

// Canonical metric names used across modules, so benchmarks and tests can
// reference them without typo risk.
namespace metrics {
inline constexpr const char* kBufferPoolHits = "bufferpool.hits";
inline constexpr const char* kBufferPoolMisses = "bufferpool.misses";
inline constexpr const char* kBufferPoolEvictions = "bufferpool.evictions";
inline constexpr const char* kDiskPageReads = "disk.page_reads";
inline constexpr const char* kDiskPageWrites = "disk.page_writes";
inline constexpr const char* kScanPagesRead = "scan.pages_read";
inline constexpr const char* kScanSharedAttach = "scan.shared_attach";
inline constexpr const char* kSpOpportunities = "sp.opportunities";
inline constexpr const char* kSpPagesCopied = "sp.pages_copied";
inline constexpr const char* kSpPagesShared = "sp.pages_shared";
inline constexpr const char* kSpBytesCopied = "sp.bytes_copied";
inline constexpr const char* kSpPagesRetained = "sp.pages_retained";  // gauge
inline constexpr const char* kSpPagesReclaimed = "sp.pages_reclaimed";
inline constexpr const char* kSpPagesSpilled = "sp.pages_spilled";
inline constexpr const char* kSpSpillBytes = "sp.spill_bytes";  // gauge
inline constexpr const char* kSpUnspillReads = "sp.unspill_reads";
// SPL hot-path contention: how often readers left the lock-free fast
// path (took the list mutex) or blocked on the producer entirely.
inline constexpr const char* kSpLockWaits = "sp.lock_waits";
inline constexpr const char* kSpReaderParks = "sp.reader_parks";
inline constexpr const char* kIoReadsIssued = "io.reads_issued";
inline constexpr const char* kIoWritesIssued = "io.writes_issued";
inline constexpr const char* kIoQueueDepth = "io.queue_depth";  // gauge
inline constexpr const char* kIoStallMicros = "io.stall_micros";
// Per-priority-class scheduler visibility (the aggregates above hide
// which class is backed up or starved).
inline constexpr const char* kIoQueueDepthPrefetch =
    "io.queue_depth.prefetch";  // gauge
inline constexpr const char* kIoQueueDepthFaultback =
    "io.queue_depth.faultback";  // gauge
inline constexpr const char* kIoQueueDepthSpill =
    "io.queue_depth.spill";  // gauge
inline constexpr const char* kIoStallMicrosPrefetch =
    "io.stall_micros.prefetch";
inline constexpr const char* kIoStallMicrosFaultback =
    "io.stall_micros.faultback";
inline constexpr const char* kIoStallMicrosSpill = "io.stall_micros.spill";
// Adaptive-admission cost model (see qpipe/cost_model.h).
inline constexpr const char* kPolicyDecisionsShared =
    "policy.decisions_shared";
inline constexpr const char* kPolicyDecisionsUnshared =
    "policy.decisions_unshared";
inline constexpr const char* kPolicyFlips = "policy.flips";
inline constexpr const char* kPolicyConfidence = "policy.confidence";  // gauge
// Online transport-cost measurements (EWMA, nanoseconds) replacing the
// cost model's fixed copy/attach constants once samples exist.
inline constexpr const char* kPolicyMeasuredCopyNs =
    "policy.measured_copy_ns";  // gauge
inline constexpr const char* kPolicyMeasuredAttachNs =
    "policy.measured_attach_ns";  // gauge
inline constexpr const char* kCjoinFactTuplesIn = "cjoin.fact_tuples_in";
inline constexpr const char* kCjoinTuplesOut = "cjoin.tuples_out";
inline constexpr const char* kCjoinTuplesDropped = "cjoin.tuples_dropped";
inline constexpr const char* kCjoinQueriesAdmitted = "cjoin.queries_admitted";
inline constexpr const char* kCjoinQueriesCompleted = "cjoin.queries_completed";
inline constexpr const char* kCjoinBitmapAndOps = "cjoin.bitmap_and_ops";
inline constexpr const char* kCjoinAdmissionEpochs = "cjoin.admission_epochs";
inline constexpr const char* kCjoinAdmissionMicros = "cjoin.admission_micros";
inline constexpr const char* kQueriesFinished = "engine.queries_finished";
// Span-duration histograms fed by the tracing instrumentation (values in
// microseconds; see docs/TRACING.md). Recorded whether or not tracing is
// enabled — histograms are the always-on aggregate view, traces the
// opt-in per-event one.
inline constexpr const char* kQueryLatencyMicros = "query.latency";
inline constexpr const char* kStageRunPacketMicros = "stage.run_packet";
inline constexpr const char* kIoDispatchWaitPrefetch =
    "io.dispatch_wait.prefetch";
inline constexpr const char* kIoDispatchWaitFaultback =
    "io.dispatch_wait.faultback";
inline constexpr const char* kIoDispatchWaitSpill = "io.dispatch_wait.spill";
// Stall watchdog (src/server/watchdog.h): per-tick condition counters —
// each counts *observations* (one per offending object per sample), so
// a sustained stall keeps climbing while a transient blip adds a few.
inline constexpr const char* kWatchdogTicks = "watchdog.ticks";
inline constexpr const char* kWatchdogQueriesOverSlo =
    "watchdog.queries_over_slo";
inline constexpr const char* kWatchdogParkedReaders =
    "watchdog.parked_readers";
inline constexpr const char* kWatchdogIoSaturation = "watchdog.io_saturation";
inline constexpr const char* kWatchdogSpillThrash = "watchdog.spill_thrash";
inline constexpr const char* kWatchdogUnhealthy =
    "watchdog.unhealthy";  // gauge
inline constexpr const char* kWatchdogCancelledQueries =
    "watchdog.cancelled_queries";
// Fault domains (src/common/fault.h and docs/ROBUSTNESS.md): injected
// faults, the IoScheduler's transient-failure retries, the governor's
// spill-disabled degradation latch, and satellite unshared re-runs after
// a host failure poisoned the sharing channel.
inline constexpr const char* kFaultInjected = "fault.injected";
inline constexpr const char* kIoRetries = "io.retries";
inline constexpr const char* kIoRetryGaveUp = "io.retry_gave_up";
inline constexpr const char* kSpSpillDisabled = "sp.spill_disabled";  // gauge
inline constexpr const char* kSharingSatelliteRerun =
    "sharing.satellite_rerun";
}  // namespace metrics

}  // namespace sharing
