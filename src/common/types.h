// Value types shared by the schema/tuple layer and the expression
// evaluator.
//
// The engine stores fixed-width rows: 64-bit integers, doubles, 32-bit
// dates (days since 1992-01-01, the TPC-H/SSB epoch) and fixed-length
// char fields. This covers every column of TPC-H `lineitem` and the full
// Star Schema Benchmark.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

namespace sharing {

enum class ValueType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kDate = 2,    // stored as int32 days since kDateEpoch
  kString = 3,  // fixed-length, space padded
};

/// Returns "int64" / "double" / "date" / "string".
std::string_view ValueTypeToString(ValueType type);

/// Fixed on-disk width of a value of `type`; strings take their declared
/// column width (handled by the schema).
std::size_t FixedWidthOf(ValueType type);

// ---------------------------------------------------------------------------
// Dates. SSB's date dimension spans 1992-01-01 .. 1998-12-31 (2556 days),
// as does TPC-H's order/ship date domain.
// ---------------------------------------------------------------------------

struct Date {
  int32_t days_since_epoch = 0;

  bool operator==(const Date&) const = default;
  auto operator<=>(const Date&) const = default;
};

inline constexpr int kDateEpochYear = 1992;

/// Builds a Date from a calendar date. Valid for years 1992..2199.
Date MakeDate(int year, int month, int day);

/// Splits a Date back into calendar fields.
void SplitDate(Date date, int* year, int* month, int* day);

/// Returns yyyymmdd as an integer key (SSB's d_datekey format).
int32_t DateKey(Date date);

/// Formats as "YYYY-MM-DD".
std::string DateToString(Date date);

// ---------------------------------------------------------------------------
// Runtime values: used at plan-construction and expression boundaries
// (per-tuple hot paths use typed accessors on raw rows instead).
// ---------------------------------------------------------------------------

using Value = std::variant<int64_t, double, Date, std::string>;

/// Type tag of a runtime value.
ValueType TypeOfValue(const Value& v);

/// Human-readable rendering, used in plan signatures and debug output.
std::string ValueToString(const Value& v);

}  // namespace sharing
