#include "common/thread_pool.h"

namespace sharing {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  return queue_.Push(std::move(task));
}

void ThreadPool::Shutdown() {
  queue_.Close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  while (auto task = queue_.Pop()) {
    (*task)();
  }
}

}  // namespace sharing
