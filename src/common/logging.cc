#include "common/logging.h"

#include <cstdio>
#include <mutex>

namespace sharing {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::LogMessage(LogLevel level, const char* file, int line,
                       uint64_t query_id)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line
          << " qid=" << query_id << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_log_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

FatalLogMessage::~FatalLogMessage() {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "%s\n", stream().str().c_str());
    std::fflush(stderr);
  }
  std::abort();
}

}  // namespace internal
}  // namespace sharing
