// StatusOr<T>: a value or the Status explaining why there is none.

#pragma once

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace sharing {

/// Holds either a T or a non-OK Status. `value()` aborts with the carried
/// status when the status is not OK — in every build type, because silently
/// reading the empty optional is memory-unsafe. The unchecked accessors
/// (operator* / operator->) assert only in debug builds; use them on paths
/// that have already tested ok().
template <typename T>
class StatusOr {
 public:
  /// Implicit from value: the common success path reads naturally
  /// (`return some_value;`).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status. Constructing from an OK status without a
  /// value is a programming error.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    SHARING_CHECK(!status_.ok())
        << "StatusOr constructed from OK status without a value";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    SHARING_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  const T& value() const& {
    SHARING_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    SHARING_CHECK(ok()) << status_.ToString();
    return std::move(*value_);
  }

  T& operator*() & {
    SHARING_DCHECK(ok());
    return *value_;
  }
  const T& operator*() const& {
    SHARING_DCHECK(ok());
    return *value_;
  }
  T* operator->() {
    SHARING_DCHECK(ok());
    return &*value_;
  }
  const T* operator->() const {
    SHARING_DCHECK(ok());
    return &*value_;
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Unwraps a StatusOr expression into `lhs`, propagating errors.
#define SHARING_ASSIGN_OR_RETURN(lhs, expr)               \
  do {                                                    \
    auto _status_or = (expr);                             \
    if (SHARING_UNLIKELY(!_status_or.ok()))               \
      return _status_or.status();                         \
    lhs = std::move(_status_or).value();                  \
  } while (0)

}  // namespace sharing
