// Minimal leveled logging and assertion facilities.
//
// SHARING_CHECK(cond) aborts in all builds; SHARING_DCHECK(cond) aborts in
// debug builds only. Logging goes to stderr and can be silenced globally
// (benchmarks do this to keep the measurement loop clean).

#pragma once

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <string>

namespace sharing {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Global minimum severity; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// A LogMessage that aborts the process in its destructor.
class FatalLogMessage : public LogMessage {
 public:
  FatalLogMessage(const char* file, int line)
      : LogMessage(LogLevel::kFatal, file, line) {}
  [[noreturn]] ~FatalLogMessage();
};

struct Voidify {
  // Lowest-precedence operator to swallow the stream expression.
  void operator&(std::ostream&) {}
};

}  // namespace internal

#define SHARING_LOG_INTERNAL(level)                                       \
  ::sharing::internal::LogMessage(::sharing::LogLevel::level, __FILE__, \
                                  __LINE__)                               \
      .stream()

#define SHARING_LOG(level) SHARING_LOG_INTERNAL(k##level)

#define SHARING_CHECK(cond)                                                 \
  (cond) ? (void)0                                                          \
         : ::sharing::internal::Voidify() &                                 \
               ::sharing::internal::FatalLogMessage(__FILE__, __LINE__)     \
                   .stream()                                                \
               << "Check failed: " #cond " "

#ifdef NDEBUG
// Compiles (no unused-variable warnings) but never evaluates `cond`.
#define SHARING_DCHECK(cond) \
  while (false) SHARING_CHECK(cond)
#else
#define SHARING_DCHECK(cond) SHARING_CHECK(cond)
#endif

#define SHARING_CHECK_OK(expr)                            \
  do {                                                    \
    ::sharing::Status _st = (expr);                       \
    SHARING_CHECK(_st.ok()) << _st.ToString();            \
  } while (0)

}  // namespace sharing
