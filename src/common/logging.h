// Minimal leveled logging and assertion facilities.
//
// SHARING_CHECK(cond) aborts in all builds; SHARING_DCHECK(cond) aborts in
// debug builds only. Logging goes to stderr and can be silenced globally
// (benchmarks do this to keep the measurement loop clean).

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

namespace sharing {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Global minimum severity; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Token for periodic emitters (the watchdog's per-condition warnings):
/// Allow() returns true at most once per `min_interval_ms`, counting
/// the calls it suppressed in between so the next emitted message can
/// say how much it is standing in for. Thread-safe, lock-free.
class LogRateLimiter {
 public:
  explicit LogRateLimiter(int64_t min_interval_ms)
      : min_interval_ms_(min_interval_ms) {}

  /// True when the caller should emit now (and resets the suppressed
  /// count); false when the message should be dropped.
  bool Allow() {
    const int64_t now = NowMs();
    int64_t last = last_emit_ms_.load(std::memory_order_relaxed);
    // last == INT64_MIN marks "never emitted": always allow the first.
    if (last != INT64_MIN && now - last < min_interval_ms_) {
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (!last_emit_ms_.compare_exchange_strong(last, now,
                                               std::memory_order_relaxed)) {
      // Another thread won this window's slot.
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    suppressed_.store(0, std::memory_order_relaxed);
    return true;
  }

  /// Messages dropped since the last emission.
  int64_t suppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }

 private:
  static int64_t NowMs() {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  const int64_t min_interval_ms_;
  std::atomic<int64_t> last_emit_ms_{INT64_MIN};
  std::atomic<int64_t> suppressed_{0};
};

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  /// Query-scoped variant: the prefix carries `qid=<id>` so a grep for
  /// one query's lifecycle picks up its warnings too (0 = no query).
  LogMessage(LogLevel level, const char* file, int line, uint64_t query_id);
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// A LogMessage that aborts the process in its destructor.
class FatalLogMessage : public LogMessage {
 public:
  FatalLogMessage(const char* file, int line)
      : LogMessage(LogLevel::kFatal, file, line) {}
  [[noreturn]] ~FatalLogMessage();
};

struct Voidify {
  // Lowest-precedence operator to swallow the stream expression.
  void operator&(std::ostream&) {}
};

}  // namespace internal

#define SHARING_LOG_INTERNAL(level)                                       \
  ::sharing::internal::LogMessage(::sharing::LogLevel::level, __FILE__, \
                                  __LINE__)                               \
      .stream()

#define SHARING_LOG(level) SHARING_LOG_INTERNAL(k##level)

/// Query-scoped logging: like SHARING_LOG but stamps `qid=<query_id>`
/// into the message prefix (the watchdog's per-query warnings use this
/// so degraded-query reports correlate with traces and explain output).
#define SHARING_LOG_QID(level, query_id)                                  \
  ::sharing::internal::LogMessage(::sharing::LogLevel::k##level, __FILE__, \
                                  __LINE__, (query_id))                    \
      .stream()

#define SHARING_CHECK(cond)                                                 \
  (cond) ? (void)0                                                          \
         : ::sharing::internal::Voidify() &                                 \
               ::sharing::internal::FatalLogMessage(__FILE__, __LINE__)     \
                   .stream()                                                \
               << "Check failed: " #cond " "

#ifdef NDEBUG
// Compiles (no unused-variable warnings) but never evaluates `cond`.
#define SHARING_DCHECK(cond) \
  while (false) SHARING_CHECK(cond)
#else
#define SHARING_DCHECK(cond) SHARING_CHECK(cond)
#endif

#define SHARING_CHECK_OK(expr)                            \
  do {                                                    \
    ::sharing::Status _st = (expr);                       \
    SHARING_CHECK(_st.ok()) << _st.ToString();            \
  } while (0)

}  // namespace sharing
