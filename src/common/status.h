// Status: the error-reporting currency of the engine.
//
// The execution engine avoids exceptions on hot paths (operators, buffers,
// storage). Fallible functions return Status (or StatusOr<T>); infallible
// invariants are enforced with SHARING_DCHECK-style assertions in
// logging.h.

#pragma once

#include <string>
#include <string_view>
#include <utility>

#include "common/macros.h"

namespace sharing {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kAborted,        // e.g. query cancelled mid-flight
  kUnavailable,    // e.g. buffer pool has no evictable frame
  kInternal,
  kNotImplemented,
  kIoError,
  kDeadlineExceeded,  // query exceeded its query_timeout_ms budget
};

/// Returns a stable human-readable name for a status code ("Ok",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A cheap, value-semantic success-or-error result. OK status carries no
/// allocation; error statuses carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller.
#define SHARING_RETURN_NOT_OK(expr)              \
  do {                                           \
    ::sharing::Status _st = (expr);              \
    if (SHARING_UNLIKELY(!_st.ok())) return _st; \
  } while (0)

}  // namespace sharing
