#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace sharing {

int64_t Histogram::TotalCount() const {
  int64_t total = 0;
  for (const auto& bucket : counts_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Mean() const {
  int64_t total = TotalCount();
  if (total == 0) return 0.0;
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) /
         static_cast<double>(total);
}

int64_t Histogram::RecordedMin() const {
  int64_t v = min_.load(std::memory_order_relaxed);
  return v == std::numeric_limits<int64_t>::max() ? 0 : v;
}

int64_t Histogram::RecordedMax() const {
  int64_t v = max_.load(std::memory_order_relaxed);
  return v == std::numeric_limits<int64_t>::min() ? 0 : v;
}

int64_t Histogram::ValueAtQuantile(double q) const {
  int64_t total = TotalCount();
  if (total == 0) return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank is 1-based so q=1.0 lands in the last non-empty bucket.
  int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(q * static_cast<double>(total))));
  int64_t seen = 0;
  int64_t estimate = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += counts_[b].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Geometric middle of [2^b, 2^(b+1)).
      if (b >= 62) {
        estimate = int64_t{1} << 62;
      } else {
        int64_t lo = int64_t{1} << b;
        estimate = lo + lo / 2;
      }
      break;
    }
  }
  // Clamp into the recorded range: a boundary value of exactly 2^b must
  // not be reported above itself, and negative/zero recordings (all in
  // bucket 0, whose middle is 1) must not turn into a positive estimate.
  const int64_t lo_rec = min_.load(std::memory_order_relaxed);
  const int64_t hi_rec = max_.load(std::memory_order_relaxed);
  if (lo_rec <= hi_rec) estimate = std::clamp(estimate, lo_rec, hi_rec);
  return estimate;
}

std::string Histogram::ToString() const {
  std::ostringstream out;
  out << "count=" << TotalCount() << " mean=" << Mean()
      << " p50=" << ValueAtQuantile(0.5) << " p95=" << ValueAtQuantile(0.95)
      << " p99=" << ValueAtQuantile(0.99);
  return out.str();
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<Histogram>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

TypedMetricsSnapshot MetricsRegistry::SnapshotTyped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TypedMetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Get();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = {gauge->Get(), gauge->HighWaterMark()};
  }
  for (const auto& [name, hist] : histograms_) {
    TypedMetricsSnapshot::HistogramValue h;
    h.count = hist->TotalCount();
    h.sum = hist->RecordedSum();
    h.p50 = hist->ValueAtQuantile(0.5);
    h.p95 = hist->ValueAtQuantile(0.95);
    h.p99 = hist->ValueAtQuantile(0.99);
    snap.histograms[name] = h;
  }
  return snap;
}

MetricsSnapshot FlattenTypedSnapshot(const TypedMetricsSnapshot& typed) {
  MetricsSnapshot snap;
  for (const auto& [name, value] : typed.counters) {
    snap[name] = value;
  }
  for (const auto& [name, gauge] : typed.gauges) {
    snap[name] = gauge.value;
    snap[name + ".hwm"] = gauge.high_water;
  }
  for (const auto& [name, hist] : typed.histograms) {
    snap[name + ".count"] = hist.count;
    snap[name + ".p50"] = hist.p50;
    snap[name + ".p95"] = hist.p95;
    snap[name + ".p99"] = hist.p99;
  }
  return snap;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  // The flat map is *defined* as the projection of the typed snapshot,
  // so the JSON-lines exporter (flat) and the Prometheus exporter
  // (typed) can never disagree about a value.
  return FlattenTypedSnapshot(SnapshotTyped());
}

MetricsSnapshot MetricsRegistry::Delta(const MetricsSnapshot& before,
                                       const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : after) {
    auto it = before.find(name);
    int64_t base = it == before.end() ? 0 : it->second;
    delta[name] = value - base;
  }
  return delta;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace sharing
