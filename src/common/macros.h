// Common macros used across the sharing engine.
//
// Follows the Google C++ style guide conventions used by this codebase:
// macros are reserved for things the language cannot express (branch hints,
// copy-control boilerplate, hardware constants).

#pragma once

#include <cstddef>

// Deletes copy construction/assignment. Place in the public section.
#define SHARING_DISALLOW_COPY(TypeName)  \
  TypeName(const TypeName&) = delete;    \
  TypeName& operator=(const TypeName&) = delete

// Deletes copy and move construction/assignment.
#define SHARING_DISALLOW_COPY_AND_MOVE(TypeName) \
  SHARING_DISALLOW_COPY(TypeName);               \
  TypeName(TypeName&&) = delete;                 \
  TypeName& operator=(TypeName&&) = delete

#if defined(__GNUC__) || defined(__clang__)
#define SHARING_LIKELY(x) __builtin_expect(!!(x), 1)
#define SHARING_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define SHARING_LIKELY(x) (x)
#define SHARING_UNLIKELY(x) (x)
#endif

namespace sharing {

// Size of a destructive-interference-free region. Used to pad hot atomics
// that would otherwise false-share (e.g. SPL producer/consumer cursors).
inline constexpr std::size_t kCacheLineSize = 64;

}  // namespace sharing
