#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

namespace sharing {

std::atomic<bool> Trace::enabled_{false};

namespace {

/// One ring slot. Every field is a relaxed atomic — on x86-64 these are
/// plain moves, and they keep the concurrent exporter TSan-clean — with
/// a per-slot seqlock version so the exporter can detect (and discard)
/// a slot it caught mid-overwrite instead of locking the writer out.
struct Slot {
  std::atomic<uint32_t> version{0};  // odd while the writer is inside
  std::atomic<char> phase{'X'};
  std::atomic<uint32_t> nargs{0};
  std::atomic<int64_t> ts_micros{0};
  std::atomic<int64_t> dur_micros{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<const char*> category{nullptr};
  std::atomic<uint64_t> query_id{0};
  std::atomic<uint64_t> signature{0};
  std::atomic<const char*> arg_key[Trace::kMaxArgs] = {};
  std::atomic<int64_t> arg_value[Trace::kMaxArgs] = {};
};

/// A decoded, stable copy of one slot (what the exporter works with).
struct DecodedEvent {
  uint32_t tid = 0;
  char phase = 'X';
  int64_t ts_micros = 0;
  int64_t dur_micros = 0;
  const char* name = nullptr;
  const char* category = nullptr;
  uint64_t query_id = 0;
  uint64_t signature = 0;
  std::size_t nargs = 0;
  TraceArg args[Trace::kMaxArgs];
};

class ThreadBuffer {
 public:
  ThreadBuffer(std::size_t capacity, uint32_t tid)
      : slots_(capacity == 0 ? 1 : capacity), tid_(tid) {}

  uint32_t tid() const { return tid_; }
  std::size_t capacity() const { return slots_.size(); }

  std::size_t resident() const {
    return std::min<uint64_t>(count_.load(std::memory_order_acquire),
                              slots_.size());
  }

  /// Owning thread only.
  void Record(char phase, const char* category, const char* name,
              int64_t ts_micros, int64_t dur_micros, uint64_t query_id,
              uint64_t signature, const TraceArg* args, std::size_t nargs) {
    const uint64_t n = count_.load(std::memory_order_relaxed);
    Slot& slot = slots_[n % slots_.size()];
    const uint32_t v = slot.version.load(std::memory_order_relaxed);
    slot.version.store(v + 1, std::memory_order_relaxed);
    // The odd version must be visible before any field store, or a
    // concurrent exporter could assemble a torn event and pass its own
    // version check.
    std::atomic_thread_fence(std::memory_order_release);
    slot.phase.store(phase, std::memory_order_relaxed);
    slot.ts_micros.store(ts_micros, std::memory_order_relaxed);
    slot.dur_micros.store(dur_micros, std::memory_order_relaxed);
    slot.name.store(name, std::memory_order_relaxed);
    slot.category.store(category, std::memory_order_relaxed);
    slot.query_id.store(query_id, std::memory_order_relaxed);
    slot.signature.store(signature, std::memory_order_relaxed);
    if (nargs > Trace::kMaxArgs) nargs = Trace::kMaxArgs;
    slot.nargs.store(static_cast<uint32_t>(nargs), std::memory_order_relaxed);
    for (std::size_t i = 0; i < nargs; ++i) {
      slot.arg_key[i].store(args[i].key, std::memory_order_relaxed);
      slot.arg_value[i].store(args[i].value, std::memory_order_relaxed);
    }
    slot.version.store(v + 2, std::memory_order_release);
    count_.store(n + 1, std::memory_order_release);
  }

  /// Any thread. Appends every stable resident event to `out`; events
  /// the writer is overwriting right now are skipped.
  void Decode(std::vector<DecodedEvent>* out) const {
    const std::size_t n = resident();
    for (std::size_t i = 0; i < n; ++i) {
      const Slot& slot = slots_[i];
      const uint32_t v1 = slot.version.load(std::memory_order_acquire);
      if (v1 & 1) continue;
      DecodedEvent ev;
      ev.tid = tid_;
      ev.phase = slot.phase.load(std::memory_order_relaxed);
      ev.ts_micros = slot.ts_micros.load(std::memory_order_relaxed);
      ev.dur_micros = slot.dur_micros.load(std::memory_order_relaxed);
      ev.name = slot.name.load(std::memory_order_relaxed);
      ev.category = slot.category.load(std::memory_order_relaxed);
      ev.query_id = slot.query_id.load(std::memory_order_relaxed);
      ev.signature = slot.signature.load(std::memory_order_relaxed);
      ev.nargs = std::min<std::size_t>(
          slot.nargs.load(std::memory_order_relaxed), Trace::kMaxArgs);
      for (std::size_t a = 0; a < ev.nargs; ++a) {
        ev.args[a].key = slot.arg_key[a].load(std::memory_order_relaxed);
        ev.args[a].value = slot.arg_value[a].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.version.load(std::memory_order_relaxed) != v1) continue;
      if (ev.name == nullptr) continue;  // never fully written
      out->push_back(ev);
    }
  }

 private:
  std::vector<Slot> slots_;
  const uint32_t tid_;
  /// Total events ever recorded into this ring (monotonic; the write
  /// cursor is count_ % capacity).
  std::atomic<uint64_t> count_{0};
};

/// Process-wide collector state: the set of per-thread rings (kept past
/// thread exit so short-lived workers still export) and the capacity new
/// rings are created with. The mutex guards registration and export
/// bookkeeping only — never the record path.
struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::size_t buffer_events = Trace::kDefaultBufferEvents;
  uint32_t next_tid = 1;
  /// Bumped by Clear() so threads holding a dropped ring re-register.
  /// Atomic so the record path can probe it without the mutex.
  std::atomic<uint64_t> epoch{1};
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

struct ThreadSlot {
  std::shared_ptr<ThreadBuffer> buffer;
  uint64_t epoch = 0;
};

ThreadBuffer* GetThreadBuffer() {
  thread_local ThreadSlot slot;
  Registry& reg = GetRegistry();
  if (slot.buffer == nullptr ||
      slot.epoch != reg.epoch.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(reg.mutex);
    slot.buffer = std::make_shared<ThreadBuffer>(reg.buffer_events,
                                                 reg.next_tid++);
    slot.epoch = reg.epoch.load(std::memory_order_relaxed);
    reg.buffers.push_back(slot.buffer);
  }
  return slot.buffer.get();
}

void AppendJsonEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace

void Trace::Enable(std::size_t buffer_events) {
  Registry& reg = GetRegistry();
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.buffer_events = buffer_events == 0 ? 1 : buffer_events;
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Trace::Disable() { enabled_.store(false, std::memory_order_relaxed); }

int64_t Trace::NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Trace::RecordComplete(const char* category, const char* name,
                           int64_t ts_micros, int64_t dur_micros,
                           uint64_t query_id, uint64_t signature,
                           const TraceArg* args, std::size_t nargs) {
  if (!enabled()) return;
  GetThreadBuffer()->Record('X', category, name, ts_micros, dur_micros,
                            query_id, signature, args, nargs);
}

void Trace::RecordInstant(const char* category, const char* name,
                          uint64_t query_id, uint64_t signature,
                          const TraceArg* args, std::size_t nargs) {
  if (!enabled()) return;
  GetThreadBuffer()->Record('i', category, name, NowMicros(), 0, query_id,
                            signature, args, nargs);
}

const char* Trace::InternString(const std::string& s) {
  // Interned strings live for the process (the pool is never torn down):
  // a ring slot written years of events ago may still point at one.
  static std::mutex* mutex = new std::mutex();
  static std::unordered_set<std::string>* pool =
      new std::unordered_set<std::string>();
  std::lock_guard<std::mutex> lock(*mutex);
  return pool->insert(s).first->c_str();
}

std::string Trace::ExportChromeJson(int64_t since_micros) {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    Registry& reg = GetRegistry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    buffers = reg.buffers;
  }
  std::vector<DecodedEvent> events;
  for (const auto& buffer : buffers) buffer->Decode(&events);
  if (since_micros > 0) {
    // Keep any event still in flight at the window start: a span that
    // began before it but ended inside it is part of the story.
    std::erase_if(events, [since_micros](const DecodedEvent& ev) {
      return ev.ts_micros + ev.dur_micros < since_micros;
    });
  }
  // chrome://tracing tolerates any order, but sorted-by-time within a
  // tid is what ci/check_trace.sh validates and what a human diffing two
  // exports wants.
  std::stable_sort(events.begin(), events.end(),
                   [](const DecodedEvent& a, const DecodedEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.ts_micros < b.ts_micros;
                   });

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (const DecodedEvent& ev : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, ev.name);
    out += "\",\"cat\":\"";
    AppendJsonEscaped(&out, ev.category == nullptr ? "-" : ev.category);
    out += "\",\"ph\":\"";
    out.push_back(ev.phase);
    out += "\"";
    if (ev.phase == 'i') out += ",\"s\":\"t\"";
    std::snprintf(buf, sizeof(buf), ",\"pid\":1,\"tid\":%u", ev.tid);
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"ts\":%lld",
                  static_cast<long long>(ev.ts_micros));
    out += buf;
    if (ev.phase == 'X') {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%lld",
                    static_cast<long long>(ev.dur_micros));
      out += buf;
    }
    out += ",\"args\":{";
    bool first_arg = true;
    if (ev.query_id != 0) {
      std::snprintf(buf, sizeof(buf), "\"query_id\":%llu",
                    static_cast<unsigned long long>(ev.query_id));
      out += buf;
      first_arg = false;
    }
    if (ev.signature != 0) {
      if (!first_arg) out += ",";
      // Hex string: signatures are 64-bit hashes and JSON numbers lose
      // precision past 2^53.
      std::snprintf(buf, sizeof(buf), "\"signature\":\"0x%llx\"",
                    static_cast<unsigned long long>(ev.signature));
      out += buf;
      first_arg = false;
    }
    for (std::size_t a = 0; a < ev.nargs; ++a) {
      if (ev.args[a].key == nullptr) continue;
      if (!first_arg) out += ",";
      first_arg = false;
      out += "\"";
      AppendJsonEscaped(&out, ev.args[a].key);
      std::snprintf(buf, sizeof(buf), "\":%lld",
                    static_cast<long long>(ev.args[a].value));
      out += buf;
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

Status Trace::ExportChromeJsonToFile(const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file.is_open()) {
    return Status::IoError("trace export: cannot open " + path);
  }
  const std::string json = ExportChromeJson();
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  file.flush();
  if (!file.good()) return Status::IoError("trace export: write failed");
  return Status::OK();
}

void Trace::Clear() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.buffers.clear();
  ++reg.epoch;
}

std::size_t Trace::ResidentEvents() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    Registry& reg = GetRegistry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    buffers = reg.buffers;
  }
  std::size_t total = 0;
  for (const auto& buffer : buffers) total += buffer->resident();
  return total;
}

}  // namespace sharing
