// StatsReporter: the metrics export pipeline's periodic emitter.
//
// A background thread snapshots a MetricsRegistry every
// stats_report_period_ms and appends one JSON line per snapshot to a
// sink — a file path, stderr, or a test-provided callback. Lines are
// self-contained ({"uptime_ms":..., "metrics":{name:value,...}}), so a
// run's sink file is directly greppable/plottable and the last line is
// always the freshest full snapshot. Stop() (and the destructor) emit
// one final snapshot so even a run shorter than the period exports its
// totals.
//
// The reporter only ever *reads* the registry (snapshots take the
// registry mutex briefly); it holds no engine references, so the owner
// may destroy it before or after the engine — QPipeEngine owns one when
// QPipeOptions::stats_report_period_ms > 0 and stops it first in its
// destructor.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "common/macros.h"
#include "common/metrics.h"

namespace sharing {

class StatsReporter {
 public:
  struct Options {
    MetricsRegistry* metrics = &MetricsRegistry::Global();

    /// Emit period. 0 disables the periodic timer (only the final
    /// snapshot at Stop is emitted).
    std::size_t period_ms = 1000;

    /// Sink file (appended). Empty = stderr.
    std::string path;

    /// Test sink: when set, lines go here instead of path/stderr.
    std::function<void(const std::string& line)> sink;
  };

  /// Starts the reporter thread.
  explicit StatsReporter(Options options);
  ~StatsReporter();

  SHARING_DISALLOW_COPY_AND_MOVE(StatsReporter);

  /// Emits a final snapshot, stops and joins the thread. Idempotent.
  void Stop();

  /// Emits one snapshot line right now (also what the timer calls).
  void EmitNow();

  /// One snapshot rendered as a JSON line (no trailing newline).
  static std::string SnapshotJsonLine(const MetricsSnapshot& snapshot,
                                      int64_t uptime_ms);

  int64_t lines_emitted() const;

 private:
  void Loop();
  void Emit(const std::string& line);

  Options options_;
  const std::chrono::steady_clock::time_point start_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  int64_t lines_emitted_ = 0;
  FILE* file_ = nullptr;  // owned when non-null (path sink)

  std::thread thread_;
};

}  // namespace sharing
