// Shared metric serialization: the ONE place a metrics snapshot turns
// into bytes. Both export paths render from here —
//
//  * MetricsJsonLine: the StatsReporter's JSON-lines format
//    ({"uptime_ms":N,"metrics":{name:value,...}}), rendered from the
//    flat snapshot (which is itself defined as the projection of the
//    typed one — see FlattenTypedSnapshot).
//  * MetricsPrometheusText: the admin server's `GET /metrics` body in
//    the Prometheus text exposition format (version 0.0.4), rendered
//    from the typed snapshot so counters/gauges/histograms keep their
//    kinds (# TYPE lines, summary quantile labels).
//
// Because both serializers consume the same registry snapshot, the
// JSON-lines sink and a Prometheus scrape can never disagree about a
// metric's value or name set.

#pragma once

#include <string>

#include "common/metrics.h"

namespace sharing {

/// Maps a registry metric name onto a valid Prometheus metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`. Dots (our namespace separator) become
/// underscores — `sp.pages_shared` -> `sp_pages_shared` — as does any
/// other invalid character; a leading digit gains a `_` prefix. The
/// mapping is injective over the registry's naming convention
/// ([a-z0-9_.], no underscore-vs-dot twins), which the formatter unit
/// test asserts for every canonical name.
std::string PrometheusMetricName(const std::string& name);

/// One snapshot as a self-contained JSON line (no trailing newline):
/// {"uptime_ms":N,"metrics":{"a.b":1,...}}. Metric names are emitted
/// verbatim (registry names are [a-z0-9_.]: nothing to escape).
std::string MetricsJsonLine(const MetricsSnapshot& snapshot,
                            int64_t uptime_ms);

/// The whole snapshot in Prometheus text exposition format:
///  * counters: `# TYPE name counter` + one sample;
///  * gauges: the value, plus a companion `<name>_hwm` gauge for the
///    high-water mark;
///  * histograms: a summary — `name{quantile="0.5|0.95|0.99"}`,
///    `name_sum`, `name_count` (our log-bucketed quantile estimates
///    slot into the summary type; no configurable buckets to expose).
std::string MetricsPrometheusText(const TypedMetricsSnapshot& snapshot);

}  // namespace sharing
