// ElasticThreadPool: a worker pool that grows on demand.
//
// QPipe packets block midway through execution (on FIFO/SPL backpressure)
// while they wait for producer packets. A fixed-size pool could then
// deadlock when plans nest operators of the same stage (e.g. left-deep join
// chains put JOIN packets below other JOIN packets). QPipe sizes per-stage
// pools generously; we make that explicit: a task never waits behind a
// *blocked* task — if no worker is idle, a new worker thread is spawned
// (up to a hard cap that exists only to catch runaway bugs).

#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/macros.h"

namespace sharing {

class ElasticThreadPool {
 public:
  explicit ElasticThreadPool(std::size_t initial_threads = 0,
                             std::size_t max_threads = 1024)
      : max_threads_(max_threads) {
    for (std::size_t i = 0; i < initial_threads; ++i) SpawnWorker();
  }

  ~ElasticThreadPool() { Shutdown(); }

  SHARING_DISALLOW_COPY_AND_MOVE(ElasticThreadPool);

  /// Schedules a task; spawns a worker if none is idle. Returns false after
  /// shutdown.
  bool Submit(std::function<void()> task) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
    // A worker that was notified but has not yet woken is still counted as
    // idle, so comparing against the queue depth (not just idle == 0) is
    // what guarantees every queued task has a worker reserved for it. An
    // undercount here re-introduces the blocked-task-behind-blocked-worker
    // deadlock this pool exists to prevent.
    if (queue_.size() > idle_workers_ && threads_.size() < max_threads_) {
      SpawnWorkerLocked();
    }
    lock.unlock();
    cv_.notify_one();
    return true;
  }

  /// Stops accepting work, drains the queue, joins all workers. Idempotent.
  void Shutdown() {
    std::vector<std::thread> to_join;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (shutdown_) return;
      shutdown_ = true;
      to_join.swap(threads_);
    }
    cv_.notify_all();
    for (auto& t : to_join) {
      if (t.joinable()) t.join();
    }
  }

  std::size_t num_threads() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return threads_.size();
  }

 private:
  void SpawnWorker() {
    std::lock_guard<std::mutex> lock(mutex_);
    SpawnWorkerLocked();
  }

  void SpawnWorkerLocked() {
    threads_.emplace_back([this] { WorkerLoop(); });
  }

  void WorkerLoop() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      ++idle_workers_;
      cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      --idle_workers_;
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      auto task = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      task();
      lock.lock();
      if (shutdown_ && queue_.empty()) return;
    }
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  std::size_t idle_workers_ = 0;
  std::size_t max_threads_;
  bool shutdown_ = false;
};

}  // namespace sharing
