#include "common/stopwatch.h"

#include <sys/resource.h>

namespace sharing {

double ProcessCpuSeconds() {
  struct rusage usage;
  getrusage(RUSAGE_SELF, &usage);
  auto to_sec = [](const timeval& tv) {
    return double(tv.tv_sec) + double(tv.tv_usec) * 1e-6;
  };
  return to_sec(usage.ru_utime) + to_sec(usage.ru_stime);
}

}  // namespace sharing
