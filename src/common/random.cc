#include "common/random.h"

#include <cmath>

namespace sharing {

namespace {
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SHARING_DCHECK(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Next() % range);
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

std::string Rng::AlphaString(std::size_t len) {
  std::string out(len, 'A');
  for (auto& c : out) c = static_cast<char>('A' + UniformInt(0, 25));
  return out;
}

namespace {
double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}
}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : rng_(seed), n_(n), theta_(theta) {
  SHARING_CHECK(n > 0) << "zipf over empty domain";
  zetan_ = Zeta(n, theta);
  zeta2theta_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfGenerator::Next() {
  if (n_ == 1) return 0;
  double u = rng_.UniformDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  return static_cast<uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

}  // namespace sharing
