#include "common/types.h"

#include <array>
#include <cstdio>

#include "common/logging.h"

namespace sharing {

std::string_view ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kDate:
      return "date";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

std::size_t FixedWidthOf(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return 8;
    case ValueType::kDouble:
      return 8;
    case ValueType::kDate:
      return 4;
    case ValueType::kString:
      return 0;  // declared per column
  }
  return 0;
}

namespace {

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static constexpr std::array<int, 12> kDays = {31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

int DaysInYear(int year) { return IsLeapYear(year) ? 366 : 365; }

}  // namespace

Date MakeDate(int year, int month, int day) {
  SHARING_DCHECK(year >= kDateEpochYear && year < 2200);
  SHARING_DCHECK(month >= 1 && month <= 12);
  SHARING_DCHECK(day >= 1 && day <= DaysInMonth(year, month));
  int32_t days = 0;
  for (int y = kDateEpochYear; y < year; ++y) days += DaysInYear(y);
  for (int m = 1; m < month; ++m) days += DaysInMonth(year, m);
  days += day - 1;
  return Date{days};
}

void SplitDate(Date date, int* year, int* month, int* day) {
  int32_t days = date.days_since_epoch;
  SHARING_DCHECK(days >= 0);
  int y = kDateEpochYear;
  while (days >= DaysInYear(y)) {
    days -= DaysInYear(y);
    ++y;
  }
  int m = 1;
  while (days >= DaysInMonth(y, m)) {
    days -= DaysInMonth(y, m);
    ++m;
  }
  *year = y;
  *month = m;
  *day = days + 1;
}

int32_t DateKey(Date date) {
  int y, m, d;
  SplitDate(date, &y, &m, &d);
  return y * 10000 + m * 100 + d;
}

std::string DateToString(Date date) {
  int y, m, d;
  SplitDate(date, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

ValueType TypeOfValue(const Value& v) {
  switch (v.index()) {
    case 0:
      return ValueType::kInt64;
    case 1:
      return ValueType::kDouble;
    case 2:
      return ValueType::kDate;
    default:
      return ValueType::kString;
  }
}

std::string ValueToString(const Value& v) {
  switch (v.index()) {
    case 0:
      return std::to_string(std::get<int64_t>(v));
    case 1: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", std::get<double>(v));
      return buf;
    }
    case 2:
      return DateToString(std::get<Date>(v));
    default:
      return "'" + std::get<std::string>(v) + "'";
  }
}

}  // namespace sharing
