#include "common/bitvector.h"

namespace sharing {

std::string QuerySet::ToString() const {
  std::string out = "{";
  bool first = true;
  ForEachSetBit([&](std::size_t bit) {
    if (!first) out += ",";
    out += std::to_string(bit);
    first = false;
  });
  out += "}";
  return out;
}

}  // namespace sharing
