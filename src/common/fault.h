// Deterministic, seedable fault injection for the whole engine.
//
// A *fault point* is a named site in production code that asks the
// process-global FaultRegistry whether to misbehave right now:
//
//   if (auto hit = SHARING_FAULT_POINT(fault_points::kDiskRead)) {
//     return Status::IoError("injected read fault");
//   }
//
// Disarmed (the production default) a check is ONE relaxed atomic load
// and a branch — no lock, no clock, no allocation (bench_ablation_faults
// gates the overhead at < 2% of a page append). Armed, the check takes
// the registry mutex (faults are a test/chaos facility; the slow path is
// the point).
//
// The schedule is armed from a spec string (EngineConfig::fault_spec or
// the admin /faults endpoint):
//
//   spec    := entry (',' entry)*
//   entry   := 'seed' '=' <uint64>            -- schedule seed (default 42)
//            | <point> '=' trigger [ '*' <int64> ]   -- payload (e.g. micros)
//   trigger := 'p' <float>     -- fire each trigger with probability p
//            | 'n' <uint64>    -- fire every Nth trigger (N >= 1)
//            | 'once'          -- fire exactly the first trigger
//
// Example: "seed=7,disk.read=p0.01,io.dispatch.delay=n10*2000,spill.open=once"
//
// Determinism: probability draws come from a per-point xoshiro stream
// seeded with seed ^ fnv1a(point), so a fixed spec produces the same
// per-point fire sequence run to run (across threads the Nth trigger may
// be claimed by a different thread, but WHICH trigger ordinals fire is
// fixed). Every fire increments the `fault.injected` counter.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/metrics.h"
#include "common/random.h"
#include "common/status.h"

namespace sharing {

/// Canonical fault-point names. Sites and tests reference these, never
/// string literals (mirrors the metrics-name convention).
namespace fault_points {
inline constexpr const char* kDiskRead = "disk.read";
inline constexpr const char* kDiskWrite = "disk.write";
inline constexpr const char* kDiskWriteShort = "disk.write.short";
inline constexpr const char* kDiskEnospc = "disk.enospc";
inline constexpr const char* kIoDispatchFail = "io.dispatch.fail";
inline constexpr const char* kIoDispatchDelay = "io.dispatch.delay";
inline constexpr const char* kSpillOpen = "spill.open";
inline constexpr const char* kSharingAppend = "sharing.append";
}  // namespace fault_points

/// One fault-point consultation's outcome.
struct FaultHit {
  bool fired = false;
  /// The entry's `*<int64>` payload (0 when none) — e.g. injected latency
  /// in micros for delay points.
  int64_t payload = 0;
  explicit operator bool() const { return fired; }
};

class FaultRegistry {
 public:
  /// The process-wide registry every SHARING_FAULT_POINT consults.
  static FaultRegistry& Global();

  /// Parses `spec` and replaces the entire schedule atomically. An empty
  /// spec is equivalent to Disarm(). On a parse error the previous
  /// schedule is left untouched.
  Status Arm(const std::string& spec);

  /// Clears the schedule; every point goes quiet.
  void Disarm();

  bool armed() const {
    return armed_points_.load(std::memory_order_relaxed) > 0;
  }

  /// Hot path. Disarmed: one relaxed load + branch. Armed: registry
  /// mutex, trigger-count bump, schedule evaluation.
  FaultHit Check(const char* point);

  /// Counts `fault.injected` in `metrics` from now on (the engine binds
  /// its own registry at construction so fires show up on /metrics).
  void BindMetrics(MetricsRegistry* metrics);

  /// JSON dump for the admin /faults endpoint: armed flag, spec, seed,
  /// and per-point {mode, arg, payload, triggers, fires}.
  std::string DescribeJson() const;

  /// Total fires since the last Arm (test convenience).
  uint64_t TotalFires() const;

 private:
  FaultRegistry() = default;

  enum class Mode { kProbability, kEveryNth, kOnce };

  struct PointState {
    Mode mode = Mode::kOnce;
    double probability = 0;
    uint64_t every_n = 1;
    int64_t payload = 0;
    uint64_t triggers = 0;  // times the site consulted this point
    uint64_t fires = 0;     // times it fired
    Rng rng{0};
  };

  /// Number of armed points; doubles as the disarmed fast-path flag.
  std::atomic<int> armed_points_{0};

  mutable std::mutex mutex_;
  std::unordered_map<std::string, PointState> points_;
  uint64_t seed_ = 42;
  std::string spec_;
  Counter* injected_ = nullptr;
};

/// Consults the global registry for `point`.
inline FaultHit FaultCheck(const char* point) {
  return FaultRegistry::Global().Check(point);
}

#define SHARING_FAULT_POINT(point) ::sharing::FaultCheck(point)

}  // namespace sharing
