#include "common/stats_reporter.h"

#include "common/logging.h"
#include "common/metrics_format.h"

namespace sharing {

StatsReporter::StatsReporter(Options options)
    : options_(std::move(options)), start_(std::chrono::steady_clock::now()) {
  if (!options_.sink && !options_.path.empty()) {
    file_ = std::fopen(options_.path.c_str(), "a");
    if (file_ == nullptr) {
      SHARING_LOG(Warning) << "stats reporter: cannot open " << options_.path
                           << ", falling back to stderr";
    }
  }
  thread_ = std::thread([this] { Loop(); });
}

StatsReporter::~StatsReporter() {
  Stop();
  if (file_ != nullptr) std::fclose(file_);
}

std::string StatsReporter::SnapshotJsonLine(const MetricsSnapshot& snapshot,
                                            int64_t uptime_ms) {
  // One shared serializer (common/metrics_format.h) renders both this
  // JSON-lines format and the admin server's Prometheus text, so the
  // two export paths cannot drift.
  return MetricsJsonLine(snapshot, uptime_ms);
}

void StatsReporter::EmitNow() {
  const int64_t uptime_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_)
          .count();
  Emit(SnapshotJsonLine(options_.metrics->Snapshot(), uptime_ms));
}

void StatsReporter::Emit(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.sink) {
    options_.sink(line);
  } else {
    FILE* out = file_ != nullptr ? file_ : stderr;
    std::fwrite(line.data(), 1, line.size(), out);
    std::fputc('\n', out);
    std::fflush(out);
  }
  ++lines_emitted_;
}

int64_t StatsReporter::lines_emitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_emitted_;
}

void StatsReporter::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (options_.period_ms == 0) {
      cv_.wait(lock, [&] { return stop_; });
    } else {
      cv_.wait_for(lock, std::chrono::milliseconds(options_.period_ms),
                   [&] { return stop_; });
    }
    if (stop_) return;
    lock.unlock();
    EmitNow();
    lock.lock();
  }
}

void StatsReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      // Already stopped; the final snapshot was emitted then.
      if (!thread_.joinable()) return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  EmitNow();  // the final snapshot: short runs still export their totals
}

}  // namespace sharing
