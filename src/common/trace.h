// Trace: the engine's always-compiled, off-by-default event recorder.
//
// The demo's GUI shows *where time goes* next to every throughput plot;
// this module is that story for the reproduction: a per-thread
// lock-free ring buffer of spans and instants covering the whole query
// lifecycle (engine submit→collect, Stage::RunPacket, cost-model
// verdicts, sharing-channel puts/attaches, SPL parks and fault-backs,
// IoScheduler jobs, buffer-pool miss stalls), exported as Chrome
// trace-event JSON loadable in Perfetto / chrome://tracing.
//
// Design constraints, in priority order:
//
//  1. Disabled cost ≈ zero. Every TRACE_SPAN/TRACE_EVENT compiles to one
//     relaxed atomic load and a branch when tracing is off — no clock
//     read, no allocation, no stores. ci/check_trace.sh holds the
//     instrumented scan path to <2% of an uninstrumented loop.
//  2. Enabled cost is bounded and lock-free. Each thread writes its own
//     fixed-capacity ring (overwrite-oldest), so a traced run can never
//     block a sharing hot path on a collector mutex or grow without
//     bound. Memory = threads * trace_buffer_events * sizeof(TraceEvent).
//  3. TSan-clean concurrent export. Event fields are relaxed atomics
//     (plain moves on x86-64) guarded by a per-slot version seqlock; the
//     exporter discards slots it catches mid-write instead of locking
//     the writer out.
//
// Spans are recorded as single Chrome "X" (complete) events at span end
// — ts + dur in one record — so an overwritten ring never strands a
// "B" without its "E". Instants are "i" events with thread scope.
// Correlation: every record carries the query id and packet signature
// (0 = not applicable); docs/TRACING.md is the span taxonomy.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace sharing {

/// One key/value span annotation (values are integers; the exporter
/// emits them under the event's "args"). Keys must outlive the trace
/// (string literals or Trace::InternString).
struct TraceArg {
  const char* key = nullptr;
  int64_t value = 0;
};

class Trace {
 public:
  /// Args a single event can carry (beyond query id / signature).
  static constexpr std::size_t kMaxArgs = 4;

  /// Default per-thread ring capacity in events (the trace_buffer_events
  /// knob; see docs/KNOBS.md).
  static constexpr std::size_t kDefaultBufferEvents = 8192;

  /// Turns recording on. Threads that first record after this call get a
  /// ring of `buffer_events` slots (threads already holding a ring keep
  /// its original capacity). Idempotent; thread-safe.
  static void Enable(std::size_t buffer_events = kDefaultBufferEvents);

  /// Turns recording off (buffers and their contents are kept for
  /// export). Thread-safe.
  static void Disable();

  /// The hot-path gate: one relaxed load.
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Monotonic microseconds (steady_clock) — the trace timebase.
  static int64_t NowMicros();

  /// Records a complete span ("X"): [ts_micros, ts_micros + dur_micros).
  /// `name` and `category` and every arg key must be string literals or
  /// interned. No-op when disabled.
  static void RecordComplete(const char* category, const char* name,
                             int64_t ts_micros, int64_t dur_micros,
                             uint64_t query_id, uint64_t signature,
                             const TraceArg* args = nullptr,
                             std::size_t nargs = 0);

  /// Records a thread-scoped instant ("i"). No-op when disabled.
  static void RecordInstant(const char* category, const char* name,
                            uint64_t query_id, uint64_t signature,
                            const TraceArg* args = nullptr,
                            std::size_t nargs = 0);

  /// Copies a runtime string into a process-lifetime C string (deduped),
  /// suitable as an event name / category / arg key. Takes a lock —
  /// intern once at setup, never per event.
  static const char* InternString(const std::string& s);

  /// Serializes every live ring into Chrome trace-event JSON:
  /// {"traceEvents":[...]}, events sorted by timestamp within each tid.
  /// Safe to call while other threads record (mid-write slots are
  /// skipped). `since_micros` bounds the window: only events still
  /// running at or after it (span end >= since, instant ts >= since)
  /// are emitted — the admin server's `/trace?ms=<n>` uses this so a
  /// scrape of a long-lived engine returns a recent window, not the
  /// whole ring. 0 (the default) exports everything resident.
  static std::string ExportChromeJson(int64_t since_micros = 0);

  /// ExportChromeJson straight to `path`.
  static Status ExportChromeJsonToFile(const std::string& path);

  /// Drops every recorded event and forgets per-thread rings (live
  /// threads re-register on their next record). Test scoping only —
  /// never concurrent with recording threads you care about.
  static void Clear();

  /// Events currently resident across all rings (post-overwrite; test
  /// surface).
  static std::size_t ResidentEvents();

 private:
  static std::atomic<bool> enabled_;
};

/// RAII span: captures the start time at construction when tracing is
/// enabled, records one complete event at destruction (or End()).
/// Cheap to construct disabled: one relaxed load, no clock read.
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name, uint64_t query_id = 0,
            uint64_t signature = 0)
      : active_(Trace::enabled()) {
    if (active_) {
      category_ = category;
      name_ = name;
      query_id_ = query_id;
      signature_ = signature;
      start_micros_ = Trace::NowMicros();
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { End(); }

  /// Attaches an integer annotation (first kMaxArgs stick). `key` must
  /// be a literal or interned. No-op when the span is inactive.
  void AddArg(const char* key, int64_t value) {
    if (!active_ || nargs_ >= Trace::kMaxArgs) return;
    args_[nargs_].key = key;
    args_[nargs_].value = value;
    ++nargs_;
  }

  /// Ends the span now (idempotent; the destructor calls it).
  void End() {
    if (!active_) return;
    active_ = false;
    Trace::RecordComplete(category_, name_, start_micros_,
                          Trace::NowMicros() - start_micros_, query_id_,
                          signature_, args_, nargs_);
  }

  bool active() const { return active_; }

 private:
  bool active_;
  const char* category_ = nullptr;
  const char* name_ = nullptr;
  uint64_t query_id_ = 0;
  uint64_t signature_ = 0;
  int64_t start_micros_ = 0;
  TraceArg args_[Trace::kMaxArgs];
  std::size_t nargs_ = 0;
};

#define SHARING_TRACE_CONCAT_IMPL(a, b) a##b
#define SHARING_TRACE_CONCAT(a, b) SHARING_TRACE_CONCAT_IMPL(a, b)

/// Scope-covering span; see TraceSpan for argument lifetimes.
#define TRACE_SPAN(category, name, query_id, signature)     \
  ::sharing::TraceSpan SHARING_TRACE_CONCAT(_trace_span_,   \
                                            __LINE__)(      \
      (category), (name), (query_id), (signature))

/// Zero-duration marker at the current instant.
#define TRACE_EVENT(category, name, query_id, signature) \
  ::sharing::Trace::RecordInstant((category), (name), (query_id), (signature))

}  // namespace sharing
